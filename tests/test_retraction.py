"""Tests for tuple retraction (§VIII deletion extension).

The oracle is replay: after deleting tuple ``k`` from a stream, every
store and every subsequent discovery must match a fresh algorithm fed
the stream with tuple ``k`` omitted.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FactDiscoverer, TableSchema, make_algorithm
from repro.core.constraint import satisfied_constraints
from repro.core.lattice import nonempty_subspaces
from repro.core.skyline import contextual_skyline

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))

row_strategy = st.fixed_dictionaries(
    {
        "d0": st.sampled_from(["a", "b"]),
        "d1": st.sampled_from(["x", "y"]),
        "m0": st.integers(min_value=0, max_value=3),
        "m1": st.integers(min_value=0, max_value=3),
    }
)

STORE_ALGOS = ["bottomup", "topdown", "sbottomup", "stopdown", "svec"]
ALL_ALGOS = STORE_ALGOS + ["bruteforce", "baselineseq", "baselineidx", "ccsc"]


def store_snapshot(algo):
    return {
        key: {r.tid for r in records} for key, records in algo.store.iter_pairs()
    }


class TestStoreRepair:
    @pytest.mark.parametrize("name", STORE_ALGOS)
    def test_invariant_restored_after_delete(self, name):
        rows = [
            {"d0": "a", "d1": "x", "m0": 3, "m1": 3},  # dominator
            {"d0": "a", "d1": "x", "m0": 1, "m1": 1},  # suppressed
            {"d0": "a", "d1": "y", "m0": 2, "m1": 0},
            {"d0": "b", "d1": "x", "m0": 0, "m1": 2},
        ]
        algo = make_algorithm(name, SCHEMA)
        algo.process_stream(rows)
        algo.retract(0)  # remove the dominator
        records = list(algo.table)
        if name in ("bottomup", "sbottomup"):
            # Invariant 1: store equals recomputed skylines everywhere.
            for record in records:
                for constraint in satisfied_constraints(record):
                    for subspace in nonempty_subspaces(SCHEMA.full_measure_mask):
                        expected = {
                            r.tid
                            for r in contextual_skyline(records, constraint, subspace)
                        }
                        stored = {
                            r.tid for r in algo.store.get(constraint, subspace)
                        }
                        assert stored == expected, (constraint, subspace)
        # The suppressed tuple re-enters the top-level skyline.
        from repro import Constraint

        top = Constraint.top(2)
        full = SCHEMA.full_measure_mask
        assert any(
            r.tid == 1
            for r in contextual_skyline(records, top, full)
        )

    @pytest.mark.parametrize("name", STORE_ALGOS)
    @settings(max_examples=15, deadline=None)
    @given(
        rows=st.lists(row_strategy, min_size=2, max_size=10),
        victim=st.integers(min_value=0, max_value=9),
    )
    def test_delete_matches_replay(self, name, rows, victim):
        victim = victim % len(rows)
        algo = make_algorithm(name, SCHEMA)
        algo.process_stream(rows)
        algo.retract(victim)

        replay = make_algorithm(name, SCHEMA)
        kept = [row for i, row in enumerate(rows) if i != victim]
        replay.process_stream(kept)

        # Same skyline *sets* per pair (tids differ: replay renumbers).
        def content(algo_):
            out = {}
            for (constraint, subspace), records in algo_.store.iter_pairs():
                out.setdefault((constraint, subspace), set()).update(
                    (r.dims, r.raw) for r in records
                )
            return out

        assert content(algo) == content(replay)

    @pytest.mark.parametrize("name", ALL_ALGOS)
    def test_discovery_after_delete_matches_replay(self, name):
        rows = [
            {"d0": "a", "d1": "x", "m0": 3, "m1": 3},
            {"d0": "a", "d1": "x", "m0": 1, "m1": 2},
            {"d0": "b", "d1": "y", "m0": 2, "m1": 1},
        ]
        probe = {"d0": "a", "d1": "x", "m0": 2, "m1": 2}
        algo = make_algorithm(name, SCHEMA)
        algo.process_stream(rows)
        algo.retract(0)
        got = {
            (c.values, m) for c, m in algo.process(probe).pairs
        }

        replay = make_algorithm(name, SCHEMA)
        replay.process_stream(rows[1:])
        expected = {
            (c.values, m) for c, m in replay.process(probe).pairs
        }
        assert got == expected, name


class TestColumnarRetraction:
    """PR-3 columnar retraction repair ≡ the scalar repair path.

    ``svec`` repairs Invariant-2 stores after a deletion from the
    anchor-bitset reverse index and one columnar dominance sweep
    (:func:`repro.algorithms.retraction.retract_top_down_columnar`);
    the scalar path recomputes contextual skylines from the table.
    Both must leave identical stores, identical op counters, and
    identical (scored) facts for every subsequent arrival — including
    streams carrying unbindable (None) dimension values, which take the
    scalar fallback for the removed tuple but still repair around
    None-valued surviving rows columnarly.
    """

    SCHEMA3 = TableSchema(("d0", "d1", "d2"), ("m0", "m1"))

    wide_row_strategy = st.fixed_dictionaries(
        {
            "d0": st.sampled_from(["a", "b", "c"]),
            "d1": st.sampled_from(["x", "y"]),
            "d2": st.sampled_from(["p", "q", None]),
            "m0": st.integers(min_value=0, max_value=4),
            "m1": st.integers(min_value=0, max_value=4),
        }
    )

    @staticmethod
    def _scalar_retract_svec(schema):
        from repro.algorithms.s_vectorized import SVectorized

        class ScalarRetractSVec(SVectorized):
            use_columnar_retraction = False

        return ScalarRetractSVec(schema)

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.lists(wide_row_strategy, min_size=4, max_size=14),
        data=st.data(),
    )
    def test_columnar_equals_scalar_retraction(self, rows, data):
        columnar = FactDiscoverer(self.SCHEMA3, algorithm="svec")
        scalar = FactDiscoverer(
            self.SCHEMA3, algorithm=self._scalar_retract_svec(self.SCHEMA3)
        )
        expected = [scalar.facts_for(row) for row in rows]
        got = [columnar.facts_for(row) for row in rows]
        victims = data.draw(
            st.lists(
                st.sampled_from(range(len(rows))),
                min_size=1,
                max_size=min(4, len(rows)),
                unique=True,
            )
        )
        for tid in victims:
            scalar.delete(tid)
            columnar.delete(tid)
        assert store_snapshot(columnar.algorithm) == store_snapshot(
            scalar.algorithm
        )
        survivors = [i for i in range(len(rows)) if i not in victims]
        # Deletions must also reverse the scoring/anchor indexes
        # identically: every subsequent arrival discovers and scores
        # the same facts on both paths, and the op counters stay in
        # lockstep (post-deletion comparisons read the repaired µ).
        more = rows[: min(4, len(rows))]
        expected_after = [scalar.facts_for(row) for row in more]
        got_after = [columnar.facts_for(row) for row in more]
        key = lambda fact: (
            fact.constraint.values,
            fact.subspace,
            fact.context_size,
            fact.skyline_size,
        )
        for want, have in zip(expected + expected_after, got + got_after):
            assert sorted(map(key, have), key=repr) == sorted(
                map(key, want), key=repr
            )
        assert (
            columnar.counters.snapshot() == scalar.counters.snapshot()
        ), survivors

    @settings(max_examples=12, deadline=None)
    @given(
        rows=st.lists(wide_row_strategy, min_size=4, max_size=12),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_algorithms_agree_across_deletions(self, rows, seed):
        """svec's columnar repair keeps it in scored-output lockstep
        with stopdown (scalar Invariant-2 repair) and bottomup
        (Invariant-1 repair) across deletion-interleaved streams."""
        import random

        rng = random.Random(seed)
        cut = len(rows) // 2
        engines = {
            name: FactDiscoverer(self.SCHEMA3, algorithm=name)
            for name in ("svec", "stopdown", "bottomup")
        }
        outputs = {name: [] for name in engines}
        for name, engine in engines.items():
            outputs[name] += [engine.facts_for(row) for row in rows[:cut]]
        victims = rng.sample(range(cut), k=min(cut, rng.randint(1, 3)))
        for tid in victims:
            for engine in engines.values():
                engine.delete(tid)
        for name, engine in engines.items():
            outputs[name] += [engine.facts_for(row) for row in rows[cut:]]
        key = lambda fact: (
            fact.constraint.values,
            fact.subspace,
            fact.context_size,
            fact.skyline_size,
        )
        snapshots = {
            name: [sorted(map(key, facts), key=repr) for facts in out]
            for name, out in outputs.items()
        }
        assert snapshots["svec"] == snapshots["stopdown"] == snapshots["bottomup"]


class TestEngineDelete:
    def test_delete_reverses_context_counts(self):
        engine = FactDiscoverer(SCHEMA, algorithm="bottomup")
        engine.observe({"d0": "a", "d1": "x", "m0": 1, "m1": 1})
        engine.observe({"d0": "a", "d1": "x", "m0": 2, "m1": 2})
        engine.delete(0)
        from repro import Constraint

        assert engine.context_counter.count(Constraint(("a", "x"))) == 1
        assert len(engine) == 1

    def test_delete_then_prominence_correct(self):
        engine = FactDiscoverer(SCHEMA, algorithm="stopdown")
        for i in range(5):
            engine.observe({"d0": "a", "d1": "x", "m0": 0, "m1": i})
        engine.observe({"d0": "a", "d1": "x", "m0": 9, "m1": 9})  # tid 5
        engine.delete(5)  # the champion leaves
        facts = engine.facts_for({"d0": "a", "d1": "x", "m0": 5, "m1": 5})
        # New arrival now tops every context again.
        assert all(f.skyline_size == 1 for f in facts if f.subspace == 0b01)

    def test_delete_missing_raises(self):
        engine = FactDiscoverer(SCHEMA, algorithm="bottomup")
        with pytest.raises(KeyError):
            engine.delete(7)
