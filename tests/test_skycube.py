"""Tests for the skycube and compressed skycube substrates ([9], [12])."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lattice import iter_submasks, nonempty_subspaces
from repro.core.record import Record
from repro.core.skyline import skyline_bnl
from repro.index.skycube import CompressedSkycube, Skycube


def rec(tid, *values):
    vals = tuple(float(v) for v in values)
    return Record(tid, ("x",), vals, vals)


streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=4),
    ),
    min_size=1,
    max_size=20,
)

FULL = 0b111


class TestSkycube:
    @settings(max_examples=30, deadline=None)
    @given(streams)
    def test_matches_bnl_in_every_subspace(self, rows):
        cube = Skycube(FULL)
        records = [rec(i, *vals) for i, vals in enumerate(rows)]
        for r in records:
            cube.insert(r)
        for subspace in nonempty_subspaces(FULL):
            expected = {r.tid for r in skyline_bnl(records, subspace)}
            got = {r.tid for r in cube.skyline(subspace)}
            assert got == expected

    def test_is_skyline_membership(self):
        cube = Skycube(0b11)
        a, b = rec(0, 3, 1), rec(1, 1, 3)
        cube.insert(a)
        cube.insert(b)
        assert cube.is_skyline(a, 0b11) and cube.is_skyline(b, 0b11)
        assert cube.is_skyline(a, 0b01) and not cube.is_skyline(b, 0b01)


class TestCompressedSkycube:
    @settings(max_examples=30, deadline=None)
    @given(streams)
    def test_query_matches_bnl(self, rows):
        csc = CompressedSkycube(FULL)
        records = [rec(i, *vals) for i, vals in enumerate(rows)]
        for r in records:
            csc.insert(r)
        for subspace in nonempty_subspaces(FULL):
            expected = {r.tid for r in skyline_bnl(records, subspace)}
            got = {r.tid for r in csc.skyline(subspace)}
            assert got == expected, subspace

    @settings(max_examples=30, deadline=None)
    @given(streams)
    def test_insert_reports_correct_skyline_bits(self, rows):
        csc = CompressedSkycube(FULL)
        records = [rec(i, *vals) for i, vals in enumerate(rows)]
        history = []
        for r in records:
            bits = csc.insert(r)
            history.append(r)
            for subspace in nonempty_subspaces(FULL):
                expected = any(
                    s.tid == r.tid for s in skyline_bnl(history, subspace)
                )
                assert bool(bits & (1 << subspace)) == expected

    @settings(max_examples=25, deadline=None)
    @given(streams)
    def test_minimum_subspace_storage_rule(self, rows):
        """A tuple is stored at M iff M is a minimal skyline subspace of
        it (the CSC compression rule of [12])."""
        csc = CompressedSkycube(FULL)
        records = [rec(i, *vals) for i, vals in enumerate(rows)]
        for r in records:
            csc.insert(r)
        sky = {
            r.tid: {
                m
                for m in nonempty_subspaces(FULL)
                if any(s.tid == r.tid for s in skyline_bnl(records, m))
            }
            for r in records
        }
        stored = {}
        for subspace, recs in csc.iter_stored():
            for r in recs:
                stored.setdefault(r.tid, set()).add(subspace)
        for tid, subspaces in sky.items():
            minimal = {
                m
                for m in subspaces
                if not any(
                    s != m and s != 0 and s in subspaces
                    for s in iter_submasks(m)
                )
            }
            assert stored.get(tid, set()) == minimal, tid

    def test_compression_stores_fewer_entries(self):
        """CSC must never store more entries than the full skycube."""
        rows = [(i % 5, (i * 3) % 5, (i * 7) % 5) for i in range(25)]
        csc = CompressedSkycube(FULL)
        cube = Skycube(FULL)
        for i, vals in enumerate(rows):
            r = rec(i, *vals)
            csc.insert(r)
            cube.insert(r)
        cube_entries = sum(
            len(cube.skyline(m)) for m in nonempty_subspaces(FULL)
        )
        assert csc.stored_tuple_count() <= cube_entries

    def test_comparison_counter_increments(self):
        csc = CompressedSkycube(0b11)
        csc.insert(rec(0, 1, 2))
        before = csc.comparisons
        csc.insert(rec(1, 2, 1))
        assert csc.comparisons > before
