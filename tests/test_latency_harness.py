"""Unit tests for the latency-measurement harness."""

import pytest

from repro.datasets import synthetic_rows, synthetic_schema
from repro.experiments.latency import LatencyProfile, latency_table, measure_latency


class TestLatencyProfile:
    def test_percentiles(self):
        p = LatencyProfile("x", [1.0, 2.0, 3.0, 4.0, 5.0])
        assert p.p50 == 3.0
        assert p.worst == 5.0
        assert p.mean == 3.0
        assert p.percentile(0) == 1.0
        assert p.percentile(100) == 5.0

    def test_single_sample(self):
        p = LatencyProfile("x", [7.0])
        assert p.p50 == p.p99 == p.worst == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyProfile("x", []).percentile(50)

    def test_row_keys(self):
        p = LatencyProfile("x", [1.0, 2.0])
        assert set(p.row()) == {"mean", "p50", "p90", "p99", "max"}


class TestMeasureLatency:
    def test_measures_all_rows_minus_warmup(self):
        schema = synthetic_schema(2, 2)
        rows = synthetic_rows(12, 2, 2, cardinalities=[2, 2], seed=1)
        profile = measure_latency("bottomup", schema, rows, warmup=2)
        assert len(profile.samples_ms) == 10
        assert all(s >= 0 for s in profile.samples_ms)

    def test_table_rendering(self):
        schema = synthetic_schema(2, 2)
        rows = synthetic_rows(6, 2, 2, seed=2)
        profiles = [
            measure_latency(name, schema, rows) for name in ("bottomup", "topdown")
        ]
        text = latency_table(profiles)
        assert "bottomup" in text and "p99" in text
