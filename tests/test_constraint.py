"""Unit tests for constraints and the subsumption order (Defs. 1, 5-7)."""

import pytest

from repro import TableSchema
from repro.core.constraint import (
    UNBOUND,
    Constraint,
    constraint_for_record,
    satisfied_constraints,
)
from repro.core.record import Record


def rec(*dims):
    return Record(0, tuple(dims), (1.0,), (1.0,))


class TestBasics:
    def test_bound_mask_and_count(self):
        c = Constraint(("a", None, "c"))
        assert c.bound_mask == 0b101
        assert c.bound_count == 2
        assert c.arity == 3

    def test_top(self):
        top = Constraint.top(3)
        assert top.is_top
        assert top.bound_count == 0

    def test_equality_and_hash(self):
        assert Constraint(("a", None)) == Constraint(("a", None))
        assert hash(Constraint(("a", None))) == hash(Constraint(("a", None)))
        assert Constraint(("a", None)) != Constraint((None, "a"))

    def test_repr_shows_stars(self):
        assert "*" in repr(Constraint(("a", None)))

    def test_from_mapping_and_back(self):
        schema = TableSchema(("d1", "d2", "d3"), ("m",))
        c = Constraint.from_mapping(schema, {"d2": "x"})
        assert c.values == (None, "x", None)
        assert c.to_mapping(schema) == {"d2": "x"}

    def test_describe(self):
        schema = TableSchema(("d1", "d2"), ("m",))
        assert Constraint(("a", None)).describe(schema) == "d1=a"
        assert Constraint((None, None)).describe(schema) == "(no constraint)"
        assert Constraint(("a", "b")).describe(schema) == "d1=a ∧ d2=b"


class TestSatisfaction:
    def test_satisfied_by_matching_record(self):
        c = Constraint(("a", None))
        assert c.satisfied_by(rec("a", "z"))

    def test_not_satisfied_on_mismatch(self):
        c = Constraint(("a", "b"))
        assert not c.satisfied_by(rec("a", "z"))

    def test_top_satisfied_by_everything(self):
        assert Constraint.top(2).satisfied_by(rec("p", "q"))


class TestSubsumption:
    def test_example_4_from_paper(self):
        # C1=⟨a,b,c⟩ is subsumed by C2=⟨a,*,c⟩.
        c1 = Constraint(("a", "b", "c"))
        c2 = Constraint(("a", None, "c"))
        assert c1.subsumed_by(c2)
        assert c1.strictly_subsumed_by(c2)
        assert not c2.subsumed_by(c1)

    def test_subsumed_by_is_reflexive(self):
        c = Constraint(("a", None))
        assert c.subsumed_by(c)
        assert not c.strictly_subsumed_by(c)

    def test_everything_subsumed_by_top(self):
        assert Constraint(("a", "b")).subsumed_by(Constraint.top(2))

    def test_selection_containment(self):
        """C1 ⊑ C2 implies σ_C1(R) ⊆ σ_C2(R) (Def. 5 consequence)."""
        c1 = Constraint(("a", "b"))
        c2 = Constraint(("a", None))
        for dims in [("a", "b"), ("a", "z"), ("q", "b")]:
            r = rec(*dims)
            if c1.satisfied_by(r):
                assert c2.satisfied_by(r)


class TestLatticeNeighbours:
    def test_parents_unbind_one_attribute(self):
        c = Constraint(("a", "b", None))
        parents = set(p.values for p in c.parents())
        assert parents == {(None, "b", None), ("a", None, None)}

    def test_ancestors_count(self):
        c = Constraint(("a", "b", "c"))
        assert sum(1 for _ in c.ancestors()) == 7  # 2^3 - 1 proper ancestors

    def test_example_5_neighbours(self):
        """Fig. 1: C=⟨a1,*,c1⟩ within C^t5."""
        t5 = rec("a1", "b1", "c1")
        c = Constraint(("a1", None, "c1"))
        parents = {p.values for p in c.parents()}
        assert parents == {(None, None, "c1"), ("a1", None, None)}
        children = {ch.values for ch in c.children_for(t5)}
        assert children == {("a1", "b1", "c1")}

    def test_bind_unbind(self):
        c = Constraint((None, "b"))
        assert c.bind(0, "a").values == ("a", "b")
        assert c.unbind(1).values == (None, None)


class TestSatisfiedConstraints:
    def test_count_is_two_to_the_n(self):
        r = rec("a", "b", "c")
        assert sum(1 for _ in satisfied_constraints(r)) == 8

    def test_every_generated_constraint_is_satisfied(self):
        r = rec("a", "b", "c")
        for c in satisfied_constraints(r):
            assert c.satisfied_by(r)

    def test_max_bound_cap(self):
        r = rec("a", "b", "c")
        capped = list(satisfied_constraints(r, max_bound=1))
        assert len(capped) == 4  # ⊤ plus three single bindings
        assert all(c.bound_count <= 1 for c in capped)

    def test_constraint_for_record_mask(self):
        r = rec("a", "b", "c")
        c = constraint_for_record(r, 0b101)
        assert c.values == ("a", None, "c")

    def test_breadth_first_order(self):
        """Alg. 1 generates ⊤ first, then level by level."""
        r = rec("a", "b", "c")
        order = [c.bound_count for c in satisfied_constraints(r)]
        assert order[0] == 0
        assert order == sorted(order)

    def test_no_duplicates(self):
        r = rec("a", "b", "c")
        seen = list(satisfied_constraints(r))
        assert len(seen) == len(set(seen))
