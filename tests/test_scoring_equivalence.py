"""Scored batch ingestion ≡ the scalar row-at-a-time loop.

The vectorized scoring subsystem (columnar ``skyline_sizes`` via the
store's scoring index, the interned-key ``ColumnarContextCounter``, and
batched demotion repair) must be *output-invisible*: ``observe_many``
with scoring on has to produce exactly what a loop of scalar ``observe``
calls produces — same facts, same context/skyline cardinalities, same
reportable selections, same operation counters — for every algorithm,
with and without ``d̂``/``m̂`` caps, and across deletions.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ColumnarContextCounter,
    Constraint,
    ContextCounter,
    DiscoveryConfig,
    FactDiscoverer,
    Record,
    TableSchema,
)
from repro.core.constraint import satisfied_constraints

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))

ALGORITHMS = ("stopdown", "svec", "bottomup")

row_strategy = st.fixed_dictionaries(
    {
        "d0": st.sampled_from(["a", "b", "c"]),
        "d1": st.sampled_from(["x", "y"]),
        "m0": st.integers(min_value=0, max_value=4),
        "m1": st.integers(min_value=0, max_value=4),
    }
)


def fact_key(fact):
    return (
        fact.record.tid,
        fact.constraint.values,
        fact.subspace,
        fact.context_size,
        fact.skyline_size,
    )


def scored_snapshot(facts_list):
    """Order-free rendering of one scored ``S_t`` per arrival."""
    return [sorted(map(fact_key, facts), key=repr) for facts in facts_list]


def reportable_snapshot(reportable_lists):
    """Reportable lists keep their ranking order — compare verbatim."""
    return [[fact_key(f) for f in facts] for facts in reportable_lists]


class TestScoredBatchEquivalence:
    """scored observe_many ≡ [observe(row) for row in rows]."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @settings(max_examples=20, deadline=None)
    @given(rows=st.lists(row_strategy, min_size=1, max_size=14))
    def test_facts_scores_and_counters_match(self, algorithm, rows):
        loop = FactDiscoverer(SCHEMA, algorithm=algorithm)
        batch = FactDiscoverer(SCHEMA, algorithm=algorithm)
        expected = [loop.facts_for(row) for row in rows]
        got = batch.facts_for_many(rows)
        assert scored_snapshot(got) == scored_snapshot(expected)
        assert batch.counters.snapshot() == loop.counters.snapshot()

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @settings(max_examples=12, deadline=None)
    @given(
        rows=st.lists(row_strategy, min_size=1, max_size=12),
        dhat=st.integers(min_value=0, max_value=2),
        mhat=st.integers(min_value=1, max_value=2),
    )
    def test_matches_under_caps(self, algorithm, rows, dhat, mhat):
        cfg = DiscoveryConfig(max_bound_dims=dhat, max_measure_dims=mhat)
        loop = FactDiscoverer(SCHEMA, algorithm=algorithm, config=cfg)
        batch = FactDiscoverer(SCHEMA, algorithm=algorithm, config=cfg)
        expected = [loop.facts_for(row) for row in rows]
        got = batch.facts_for_many(rows)
        assert scored_snapshot(got) == scored_snapshot(expected)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @settings(max_examples=10, deadline=None)
    @given(
        rows=st.lists(row_strategy, min_size=1, max_size=12),
        tau=st.sampled_from([None, 1.0, 3.0]),
        top_k=st.sampled_from([None, 1, 3]),
    )
    def test_reportable_selection_matches(self, algorithm, rows, tau, top_k):
        if tau is not None and top_k is not None:
            top_k = None  # tau takes precedence; test one policy at a time
        cfg = DiscoveryConfig(tau=tau, top_k=top_k)
        loop = FactDiscoverer(SCHEMA, algorithm=algorithm, config=cfg)
        batch = FactDiscoverer(SCHEMA, algorithm=algorithm, config=cfg)
        expected = [loop.observe(row) for row in rows]
        got = batch.observe_many(rows)
        assert reportable_snapshot(got) == reportable_snapshot(expected)

    @settings(max_examples=15, deadline=None)
    @given(rows=st.lists(row_strategy, min_size=1, max_size=14))
    def test_algorithms_agree_on_scores(self, rows):
        """The same stream scores identically across all algorithms."""
        outputs = [
            scored_snapshot(
                FactDiscoverer(SCHEMA, algorithm=name).facts_for_many(rows)
            )
            for name in ALGORITHMS
        ]
        assert outputs[0] == outputs[1] == outputs[2]


class TestDeletionInterleaved:
    """Deletions between scored batches: stores, counters, and the
    context counts behind prominence must all repair identically."""

    @pytest.mark.parametrize("algorithm", ("stopdown", "svec"))
    @settings(max_examples=10, deadline=None)
    @given(
        rows=st.lists(row_strategy, min_size=4, max_size=14),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_scored_batches_survive_deletions(self, algorithm, rows, seed):
        rng = random.Random(seed)
        cut = len(rows) // 2
        loop = FactDiscoverer(SCHEMA, algorithm=algorithm)
        batch = FactDiscoverer(SCHEMA, algorithm=algorithm)
        expected = [loop.facts_for(row) for row in rows[:cut]]
        got = batch.facts_for_many(rows[:cut])
        victims = rng.sample(range(cut), k=min(cut, rng.randint(1, 3)))
        for tid in victims:
            loop.delete(tid)
            batch.delete(tid)
        expected += [loop.facts_for(row) for row in rows[cut:]]
        got += batch.facts_for_many(rows[cut:])
        assert scored_snapshot(got) == scored_snapshot(expected)
        # The unregister path must leave both counters in lockstep for
        # every constraint any processed tuple satisfies.
        for record in batch.table:
            for constraint in satisfied_constraints(record):
                assert batch.context_counter.count(
                    constraint
                ) == loop.context_counter.count(constraint)


class TestUnbindableDimValues:
    """Dimension values equal to the unbound marker collapse distinct
    ``C^t`` masks onto one constraint, so pruning state must be read at
    the collapsed *canonical* mask (``mask & bindable_positions``).
    Historically topdown/stopdown (and, on streams whose dominators
    bind a value at the arrival's None position, svec's scalar pass
    too) tested the raw mask and over-reported; since the canonical
    -mask fix **every** algorithm agrees with the ``bruteforce`` oracle
    on such streams."""

    #: The original ROADMAP repro: the second arrival's dominator is
    #: met at ⊤, but the third arrival's raw mask {d0} (collapsing onto
    #: ⊤) used to re-report the pruned constraint.
    ROWS = [
        {"d0": None, "d1": "y", "d2": None, "m0": 1, "m1": 1},
        {"d0": "b", "d1": "x", "d2": "r", "m0": 2, "m1": 1},
        {"d0": None, "d1": "y", "d2": "p", "m0": 0, "m1": 0},
    ]
    SCHEMA3 = TableSchema(("d0", "d1", "d2"), ("m0", "m1"))

    #: A dominator binding a value at the arrival's None position: its
    #: agreement mask cannot cover the duplicate raw masks, which used
    #: to slip past svec's exact sweep as well.
    ROWS2 = [
        {"d0": "a", "d1": "y", "m0": 2},
        {"d0": None, "d1": "y", "m0": 1},
    ]
    SCHEMA2 = TableSchema(("d0", "d1"), ("m0",))

    ALL = ("svec", "bottomup", "topdown", "stopdown", "sbottomup")

    @pytest.mark.parametrize("algorithm", ALL)
    def test_matches_bruteforce_with_none_dims(self, algorithm):
        from repro import make_algorithm

        oracle = make_algorithm("bruteforce", self.SCHEMA3)
        algo = make_algorithm(algorithm, self.SCHEMA3)
        want = [fs.pairs for fs in oracle.process_stream(self.ROWS)]
        got = [fs.pairs for fs in algo.process_stream(self.ROWS)]
        assert got == want

    @pytest.mark.parametrize("algorithm", ALL)
    def test_matches_bruteforce_with_bound_dominator(self, algorithm):
        from repro import make_algorithm

        oracle = make_algorithm("bruteforce", self.SCHEMA2)
        algo = make_algorithm(algorithm, self.SCHEMA2)
        want = [fs.pairs for fs in oracle.process_stream(self.ROWS2)]
        got = [fs.pairs for fs in algo.process_stream(self.ROWS2)]
        assert got == want

    none_row_strategy = st.fixed_dictionaries(
        {
            "d0": st.sampled_from(["a", "b", None]),
            "d1": st.sampled_from(["x", "y", None]),
            "d2": st.sampled_from(["p", None]),
            "m0": st.integers(min_value=0, max_value=3),
            "m1": st.integers(min_value=0, max_value=3),
        }
    )

    @pytest.mark.parametrize("algorithm", ("svec", "topdown", "stopdown"))
    @settings(max_examples=20, deadline=None)
    @given(rows=st.lists(none_row_strategy, min_size=1, max_size=10))
    def test_property_matches_bruteforce(self, algorithm, rows):
        from repro import make_algorithm

        oracle = make_algorithm("bruteforce", self.SCHEMA3)
        algo = make_algorithm(algorithm, self.SCHEMA3)
        want = [fs.pairs for fs in oracle.process_stream(rows)]
        got = [fs.pairs for fs in algo.process_stream(rows)]
        assert got == want

    @settings(max_examples=20, deadline=None)
    @given(rows=st.lists(none_row_strategy, min_size=1, max_size=10))
    def test_svec_counters_match_stopdown_on_none_streams(self, rows):
        """Unbindable values route svec to its scalar fallback pass,
        which must stay in op-counter lockstep with stopdown — including
        the self-comparisons at collapsed duplicate masks whose bucket
        the arrival itself just created."""
        from repro import make_algorithm

        svec = make_algorithm("svec", self.SCHEMA3)
        stopdown = make_algorithm("stopdown", self.SCHEMA3)
        svec.process_stream(rows)
        stopdown.process_stream(rows)
        assert svec.counters.snapshot() == stopdown.counters.snapshot()

    def test_scored_batch_matches_loop_with_none_dims(self):
        loop = FactDiscoverer(self.SCHEMA3, algorithm="svec")
        batch = FactDiscoverer(self.SCHEMA3, algorithm="svec")
        expected = [loop.facts_for(row) for row in self.ROWS]
        got = batch.facts_for_many(self.ROWS)
        assert scored_snapshot(got) == scored_snapshot(expected)
        assert batch.counters.snapshot() == loop.counters.snapshot()


def rec(tid, dims):
    return Record(tid, tuple(dims), (1.0,), (1.0,))


value_strategy = st.sampled_from(["a", "b", None, 1])


class TestColumnarContextCounter:
    """The interned-key counter is count-for-count identical to the
    scalar one — including batch registration, deletions, the d̂ cap,
    and dimension values equal to the unbound marker."""

    @settings(max_examples=40, deadline=None)
    @given(
        dims_list=st.lists(
            st.tuples(value_strategy, value_strategy, value_strategy),
            min_size=1,
            max_size=24,
        ),
        max_bound=st.sampled_from([None, 0, 1, 2]),
        batch_cut=st.integers(min_value=0, max_value=24),
        n_deletes=st.integers(min_value=0, max_value=4),
    )
    def test_matches_scalar_counter(
        self, dims_list, max_bound, batch_cut, n_deletes
    ):
        scalar = ContextCounter(max_bound)
        columnar = ColumnarContextCounter(3, max_bound)
        records = [rec(tid, dims) for tid, dims in enumerate(dims_list)]
        cut = min(batch_cut, len(records))
        for record in records[:cut]:
            scalar.register(record)
            columnar.register(record)
        scalar.register_many(records[cut:])
        columnar.register_many(records[cut:])
        for record in records[:n_deletes]:
            scalar.unregister(record)
            columnar.unregister(record)
        assert len(scalar) == len(columnar)
        for record in records:
            for constraint in satisfied_constraints(record, max_bound):
                assert scalar.count(constraint) == columnar.count(constraint)
        unseen = Constraint(("zz", None, None))
        assert scalar.count(unseen) == columnar.count(unseen) == 0

    def test_register_accepts_shared_constraints(self):
        # Interface parity with the scalar counter: a caller may hand
        # over its memoised C^t; the columnar counter keys off ids.
        counter = ColumnarContextCounter(2)
        record = rec(0, ("a", "b"))
        counter.register(record, list(satisfied_constraints(record)))
        assert counter.count(Constraint(("a", None))) == 1

    def test_grouped_batch_path_kicks_in(self):
        # ≥16 UNBOUND-free rows take the np.unique grouping path.
        records = [
            rec(tid, ("a" if tid % 2 else "b", "x")) for tid in range(20)
        ]
        counter = ColumnarContextCounter(2)
        counter.register_many(records)
        assert counter.count(Constraint((None, "x"))) == 20
        assert counter.count(Constraint(("a", "x"))) == 10
        assert counter.count(Constraint(("b", None))) == 10
