"""Run the docstring examples of the public modules as doctests.

Keeps README-level examples in the code honest: if an API changes, the
inline examples fail here before a user hits them.
"""

import doctest

import pytest

import repro.api.facade
import repro.api.middleware
import repro.api.spec
import repro.core.config
import repro.core.constraint
import repro.core.engine
import repro.core.lattice
import repro.core.record
import repro.core.schema
import repro.extensions.aggregates
import repro.extensions.windowed
import repro.index.kdtree
import repro.query.parser
import repro.service.sharding
import repro.storage.columnar_store

MODULES = [
    repro.api.spec,
    repro.api.facade,
    repro.api.middleware,
    repro.core.schema,
    repro.core.record,
    repro.core.constraint,
    repro.core.lattice,
    repro.core.engine,
    repro.extensions.windowed,
    repro.extensions.aggregates,
    repro.index.kdtree,
    repro.query.parser,
    repro.service.sharding,
    repro.storage.columnar_store,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"


def test_at_least_some_examples_exist():
    total = sum(
        doctest.testmod(module, verbose=False).attempted for module in MODULES
    )
    assert total >= 8, "public modules should carry runnable examples"
