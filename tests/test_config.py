"""Tests for DiscoveryConfig (d̂ / m̂ / τ / top-k knobs)."""

import pytest

from repro import DiscoveryConfig


class TestValidation:
    def test_defaults_are_unrestricted(self):
        cfg = DiscoveryConfig()
        assert cfg.max_bound_dims is None
        assert cfg.max_measure_dims is None
        assert cfg.tau is None
        assert cfg.top_k is None

    def test_negative_dhat_rejected(self):
        with pytest.raises(ValueError):
            DiscoveryConfig(max_bound_dims=-1)

    def test_zero_mhat_rejected(self):
        with pytest.raises(ValueError):
            DiscoveryConfig(max_measure_dims=0)

    def test_tau_below_one_rejected(self):
        with pytest.raises(ValueError):
            DiscoveryConfig(tau=0.5)

    def test_top_k_zero_rejected(self):
        with pytest.raises(ValueError):
            DiscoveryConfig(top_k=0)

    def test_dhat_zero_allowed(self):
        """d̂=0 means only ⊤ (the whole table) is considered."""
        cfg = DiscoveryConfig(max_bound_dims=0)
        assert cfg.allows_constraint_mask(0)
        assert not cfg.allows_constraint_mask(1)


class TestAllowances:
    def test_constraint_mask_cap(self):
        cfg = DiscoveryConfig(max_bound_dims=2)
        assert cfg.allows_constraint_mask(0b011)
        assert cfg.allows_constraint_mask(0b100)
        assert not cfg.allows_constraint_mask(0b111)

    def test_subspace_cap(self):
        cfg = DiscoveryConfig(max_measure_dims=2)
        assert cfg.allows_subspace(0b11)
        assert not cfg.allows_subspace(0b111)

    def test_empty_subspace_never_allowed(self):
        assert not DiscoveryConfig().allows_subspace(0)

    def test_unrestricted_allows_everything_nonempty(self):
        cfg = DiscoveryConfig()
        assert cfg.allows_constraint_mask(0b11111111)
        assert cfg.allows_subspace(0b1111111)

    def test_frozen(self):
        cfg = DiscoveryConfig()
        with pytest.raises(AttributeError):
            cfg.tau = 3.0
