"""Sharded subspace-parallel ingestion ≡ the unsharded engines.

The service layer's exactness claim: partitioning the measure-subspace
axis across ``svec`` workers and recombining per-arrival facts must be
*output-invisible* — same facts in the same emission order, same
context/skyline cardinalities, same reportable selections, and the same
op-counter totals as both the unsharded ``svec`` engine and the scalar
``stopdown`` reference, across shard counts, execution modes,
deletion-interleaved streams, and streams carrying unbindable (``None``)
dimension values (the scalar-fallback pass).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DiscoveryConfig, FactDiscoverer, TableSchema
from repro.service.sharding import (
    ShardedDiscoverer,
    canonical_subspace_keys,
    partition_subspaces,
)

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))

row_strategy = st.fixed_dictionaries(
    {
        "d0": st.sampled_from(["a", "b", "c"]),
        "d1": st.sampled_from(["x", "y"]),
        "m0": st.integers(min_value=0, max_value=4),
        "m1": st.integers(min_value=0, max_value=4),
    }
)

#: Rows whose dimension values may equal the unbound marker — svec takes
#: its scalar fallback pass, which the shards must replicate too.
noneful_row_strategy = st.fixed_dictionaries(
    {
        "d0": st.sampled_from(["a", None]),
        "d1": st.sampled_from(["x", "y", None]),
        "m0": st.integers(min_value=0, max_value=3),
        "m1": st.integers(min_value=0, max_value=3),
    }
)


def fact_key(fact):
    return (
        fact.record.tid,
        fact.constraint.values,
        fact.subspace,
        fact.context_size,
        fact.skyline_size,
    )


def emitted(facts_list):
    """Per-arrival facts *in emission order* (the sharded merger must
    reproduce the canonical order, not just the set)."""
    return [[fact_key(f) for f in facts] for facts in facts_list]


def reportable(lists):
    return [[fact_key(f) for f in facts] for facts in lists]


class TestPartition:
    def test_canonical_keys_full_space_first(self):
        keys = canonical_subspace_keys(SCHEMA)
        assert keys[0] == SCHEMA.full_measure_mask
        assert sorted(keys) == [1, 2, 3]

    def test_canonical_keys_respect_mhat(self):
        keys = canonical_subspace_keys(
            SCHEMA, DiscoveryConfig(max_measure_dims=1)
        )
        # Full space stays first (the root substrate) even when the m̂
        # cap excludes it from reporting.
        assert keys[0] == SCHEMA.full_measure_mask
        assert set(keys) == {3, 1, 2}

    def test_weighted_partition_lightens_root_shard(self):
        # The root key costs ~2 node keys, so shard 0 carries fewer.
        assert partition_subspaces([7, 1, 2, 4, 3], 2) == [[7, 4], [1, 2, 3]]
        shards = partition_subspaces(list(range(15)), 4)
        assert shards[0][0] == 0  # root key stays on shard 0
        assert len(shards[0]) < max(len(s) for s in shards[1:])

    def test_partition_clamps_to_key_count(self):
        shards = partition_subspaces([3, 1, 2], 8)
        assert shards == [[3], [1], [2]]
        assert all(shards)

    def test_partition_covers_each_key_once(self):
        keys = list(range(1, 16))
        for n in (1, 2, 3, 4, 7):
            shards = partition_subspaces(keys, n)
            flat = [k for shard in shards for k in shard]
            assert sorted(flat) == keys

    def test_worker_count_clamped(self):
        sharded = ShardedDiscoverer(SCHEMA, n_workers=64, mode="serial")
        assert sharded.n_workers == len(canonical_subspace_keys(SCHEMA))
        sharded.close()

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            ShardedDiscoverer(SCHEMA, mode="fleet")

    def test_unscored_with_tau_rejected(self):
        with pytest.raises(ValueError, match="prominence"):
            ShardedDiscoverer(
                SCHEMA, DiscoveryConfig(tau=2.0), score=False, mode="serial"
            )


class TestShardedEquivalence:
    """sharded(N) ≡ unsharded svec ≡ scalar stopdown."""

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    @settings(max_examples=15, deadline=None)
    @given(rows=st.lists(row_strategy, min_size=1, max_size=14))
    def test_facts_scores_order_and_counters(self, n_workers, rows):
        svec = FactDiscoverer(SCHEMA, algorithm="svec")
        scalar = FactDiscoverer(SCHEMA, algorithm="stopdown")
        with ShardedDiscoverer(
            SCHEMA, n_workers=n_workers, mode="serial", chunk_size=5
        ) as sharded:
            got = sharded.facts_for_many(rows)
            expected = svec.facts_for_many(rows)
            reference = [scalar.facts_for(row) for row in rows]
            assert emitted(got) == emitted(expected)
            assert emitted(got) == emitted(reference)
            assert sharded.counters.snapshot() == svec.counters.snapshot()
            assert sharded.counters.snapshot() == scalar.counters.snapshot()

    @pytest.mark.parametrize("n_workers", [2, 4])
    @settings(max_examples=10, deadline=None)
    @given(
        rows=st.lists(row_strategy, min_size=2, max_size=12),
        delete_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_deletion_interleaved_streams(self, n_workers, rows, delete_seed):
        import random

        rng = random.Random(delete_seed)
        svec = FactDiscoverer(SCHEMA, algorithm="svec")
        scalar = FactDiscoverer(SCHEMA, algorithm="stopdown")
        with ShardedDiscoverer(
            SCHEMA, n_workers=n_workers, mode="serial", chunk_size=3
        ) as sharded:
            live = []
            for i, row in enumerate(rows):
                got = sharded.observe(row)
                assert reportable([got]) == reportable([svec.observe(row)])
                assert reportable([got]) == reportable([scalar.observe(row)])
                live.append(i)
                if len(live) > 1 and rng.random() < 0.35:
                    victim = live.pop(rng.randrange(len(live)))
                    removed = sharded.delete(victim)
                    assert svec.delete(victim).dims == removed.dims
                    scalar.delete(victim)
            assert sharded.counters.snapshot() == svec.counters.snapshot()
            assert sharded.counters.snapshot() == scalar.counters.snapshot()

    @pytest.mark.parametrize("n_workers", [2, 4])
    @settings(max_examples=10, deadline=None)
    @given(rows=st.lists(noneful_row_strategy, min_size=1, max_size=10))
    def test_unbindable_dimension_values(self, n_workers, rows):
        """Rows with None dims take svec's scalar fallback — shards too."""
        svec = FactDiscoverer(SCHEMA, algorithm="svec")
        with ShardedDiscoverer(
            SCHEMA, n_workers=n_workers, mode="serial", chunk_size=4
        ) as sharded:
            assert emitted(sharded.facts_for_many(rows)) == emitted(
                svec.facts_for_many(rows)
            )
            assert sharded.counters.snapshot() == svec.counters.snapshot()

    @pytest.mark.parametrize(
        "config",
        [
            DiscoveryConfig(max_bound_dims=1),
            DiscoveryConfig(max_measure_dims=1),
            DiscoveryConfig(tau=2.0),
            DiscoveryConfig(top_k=3),
        ],
        ids=["dhat", "mhat", "tau", "topk"],
    )
    def test_config_knobs(self, config):
        rows = [
            {"d0": d0, "d1": d1, "m0": m0, "m1": m1}
            for d0, d1, m0, m1 in [
                ("a", "x", 3, 1),
                ("a", "y", 1, 3),
                ("b", "x", 2, 2),
                ("a", "x", 3, 3),
                ("c", "y", 0, 4),
                ("b", "x", 4, 0),
            ]
        ]
        svec = FactDiscoverer(SCHEMA, algorithm="svec", config=config)
        with ShardedDiscoverer(
            SCHEMA, config, n_workers=2, mode="serial"
        ) as sharded:
            assert reportable(sharded.observe_many(rows)) == reportable(
                svec.observe_many(rows)
            )
            assert sharded.counters.snapshot() == svec.counters.snapshot()

    def test_unscored_mode(self):
        rows = [
            {"d0": "a", "d1": "x", "m0": i % 3, "m1": (5 - i) % 4}
            for i in range(10)
        ]
        svec = FactDiscoverer(SCHEMA, algorithm="svec", score=False)
        with ShardedDiscoverer(
            SCHEMA, n_workers=2, mode="serial", score=False, chunk_size=4
        ) as sharded:
            got = sharded.facts_for_many(rows)
            expected = svec.facts_for_many(rows)
            assert [
                [(f.constraint.values, f.subspace) for f in facts]
                for facts in got
            ] == [
                [(f.constraint.values, f.subspace) for f in facts]
                for facts in expected
            ]
            assert all(
                f.context_size is None and f.skyline_size is None
                for facts in got
                for f in facts
            )
            assert sharded.counters.snapshot() == svec.counters.snapshot()


class TestExecutionModes:
    """thread/process modes produce exactly the serial merge."""

    ROWS = [
        {"d0": d0, "d1": d1, "m0": m0, "m1": m1}
        for d0, d1, m0, m1 in [
            ("a", "x", 1, 4),
            ("b", "y", 4, 1),
            ("a", "x", 2, 3),
            ("c", "y", 3, 2),
            ("a", "y", 4, 4),
            ("b", "x", 0, 0),
            ("a", "x", 3, 3),
            ("c", "x", 2, 1),
        ]
    ]

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_mode_equivalence_with_deletions(self, mode):
        svec = FactDiscoverer(SCHEMA, algorithm="svec")
        with ShardedDiscoverer(
            SCHEMA, n_workers=2, mode=mode, chunk_size=3
        ) as sharded:
            assert emitted(sharded.facts_for_many(self.ROWS[:6])) == emitted(
                svec.facts_for_many(self.ROWS[:6])
            )
            sharded.delete(2)
            svec.delete(2)
            assert emitted(sharded.facts_for_many(self.ROWS[6:])) == emitted(
                svec.facts_for_many(self.ROWS[6:])
            )
            assert sharded.counters.snapshot() == svec.counters.snapshot()

    def test_close_is_idempotent_and_final(self):
        sharded = ShardedDiscoverer(SCHEMA, n_workers=2, mode="serial")
        sharded.observe({"d0": "a", "d1": "x", "m0": 1, "m1": 1})
        sharded.close()
        sharded.close()
        with pytest.raises(RuntimeError, match="closed"):
            sharded.observe({"d0": "a", "d1": "x", "m0": 1, "m1": 1})

    def test_bad_row_mid_chunk_does_not_desync(self):
        """A malformed row must raise without corrupting the router/
        worker tid alignment — later output stays identical."""
        from repro.core.schema import SchemaError

        svec = FactDiscoverer(SCHEMA, algorithm="svec")
        with ShardedDiscoverer(
            SCHEMA, n_workers=2, mode="serial", chunk_size=4
        ) as sharded:
            sharded.facts_for_many(self.ROWS[:3])
            svec.facts_for_many(self.ROWS[:3])
            bad = {"d0": "a", "d1": "x", "m0": "not-a-number", "m1": 1}
            with pytest.raises(SchemaError):
                sharded.facts_for_many([self.ROWS[3], bad, self.ROWS[4]])
            # Admission is chunk-atomic: the failing chunk left nothing
            # behind, on the router or the workers.
            assert [r.tid for r in sharded.table] == [0, 1, 2]
            sharded.facts_for(self.ROWS[3])
            svec.facts_for(self.ROWS[3])
            assert emitted(sharded.facts_for_many(self.ROWS[5:])) == emitted(
                svec.facts_for_many(self.ROWS[5:])
            )
            assert sharded.counters.snapshot() == svec.counters.snapshot()

    def test_update_matches_engine(self):
        svec = FactDiscoverer(SCHEMA, algorithm="svec")
        with ShardedDiscoverer(SCHEMA, n_workers=2, mode="serial") as sharded:
            for row in self.ROWS[:4]:
                sharded.observe(row)
                svec.observe(row)
            new_row = {"d0": "c", "d1": "x", "m0": 4, "m1": 4}
            assert reportable([sharded.update(1, new_row)]) == reportable(
                [svec.update(1, new_row)]
            )
