"""Stateful property test: arbitrary interleavings of insert / delete /
update must leave every algorithm equivalent to a replay of the live
rows only.

This is the strongest correctness net in the suite: hypothesis drives a
random command sequence against a long-lived engine, and after every
command the *next* discovery must match a fresh engine fed only the
currently-live rows (in their original relative order).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FactDiscoverer, TableSchema

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))

row_strategy = st.fixed_dictionaries(
    {
        "d0": st.sampled_from(["a", "b"]),
        "d1": st.sampled_from(["x", "y"]),
        "m0": st.integers(min_value=0, max_value=3),
        "m1": st.integers(min_value=0, max_value=3),
    }
)

# A command is ("insert", row) or ("delete", victim_index) or
# ("update", victim_index, row).
commands = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), row_strategy),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=30)),
        st.tuples(
            st.just("update"), st.integers(min_value=0, max_value=30), row_strategy
        ),
    ),
    min_size=1,
    max_size=14,
)

PROBE = {"d0": "a", "d1": "x", "m0": 2, "m1": 2}


def apply_commands(engine, cmds):
    """Run commands; returns the rows that are live afterwards, in the
    relative order the engine's table holds them."""
    live = []  # (tid, row)
    for cmd in cmds:
        if cmd[0] == "insert":
            engine.observe(cmd[1])
            live.append((engine.table[len(engine.table) - 1].tid, cmd[1]))
        elif cmd[0] == "delete":
            if not live:
                continue
            index = cmd[1] % len(live)
            tid, _row = live.pop(index)
            engine.delete(tid)
        else:  # update
            if not live:
                continue
            index = cmd[1] % len(live)
            tid, _row = live.pop(index)
            engine.update(tid, cmd[2])
            live.append((engine.table[len(engine.table) - 1].tid, cmd[2]))
    return [row for _tid, row in live]


@pytest.mark.parametrize(
    "name", ["bottomup", "topdown", "sbottomup", "stopdown", "svec"]
)
@settings(max_examples=20, deadline=None)
@given(cmds=commands)
def test_interleaved_mutations_match_replay(name, cmds):
    engine = FactDiscoverer(SCHEMA, algorithm=name)
    live_rows = apply_commands(engine, cmds)

    fresh = FactDiscoverer(SCHEMA, algorithm=name)
    for row in live_rows:
        fresh.observe(row)

    got = {
        (f.constraint.values, f.subspace, f.context_size, f.skyline_size)
        for f in engine.facts_for(PROBE)
    }
    expected = {
        (f.constraint.values, f.subspace, f.context_size, f.skyline_size)
        for f in fresh.facts_for(PROBE)
    }
    assert got == expected


@settings(max_examples=10, deadline=None)
@given(cmds=commands)
def test_interleaved_mutations_keep_algorithms_equivalent(cmds):
    engines = {
        name: FactDiscoverer(SCHEMA, algorithm=name)
        for name in ("bottomup", "stopdown")
    }
    outputs = {}
    for name, engine in engines.items():
        apply_commands(engine, cmds)
        outputs[name] = {
            (f.constraint.values, f.subspace) for f in engine.facts_for(PROBE)
        }
    assert outputs["bottomup"] == outputs["stopdown"]


class TestUpdate:
    def test_update_replaces_tuple(self):
        engine = FactDiscoverer(SCHEMA, algorithm="stopdown")
        engine.observe({"d0": "a", "d1": "x", "m0": 9, "m1": 9})
        engine.update(0, {"d0": "a", "d1": "x", "m0": 1, "m1": 1})
        assert len(engine) == 1
        # A mid-range arrival now tops everything (the 9/9 is gone).
        facts = engine.facts_for({"d0": "a", "d1": "x", "m0": 5, "m1": 5})
        assert all(f.skyline_size == 1 for f in facts)

    def test_update_missing_raises(self):
        engine = FactDiscoverer(SCHEMA, algorithm="bottomup")
        with pytest.raises(KeyError):
            engine.update(3, {"d0": "a", "d1": "x", "m0": 1, "m1": 1})
