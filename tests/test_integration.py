"""Cross-module integration tests: long streams, snapshot mid-stream,
file-backed retraction, end-to-end pipelines."""

import pytest

from repro import Constraint, DiscoveryConfig, FactDiscoverer, TableSchema, make_algorithm
from repro.algorithms import FSTopDown
from repro.datasets import nba_rows, nba_schema, synthetic_rows, synthetic_schema
from repro.extensions import load_engine, save_engine


class TestSnapshotMidStream:
    def test_resume_produces_identical_future(self, tmp_path):
        schema = nba_schema(4, 4)
        config = DiscoveryConfig(max_bound_dims=2, max_measure_dims=2)
        rows = nba_rows(60, d=4, m=4)

        straight = FactDiscoverer(schema, algorithm="stopdown", config=config)
        for row in rows[:40]:
            straight.observe(row)
        path = str(tmp_path / "mid.json")
        save_engine(straight, path)
        resumed = load_engine(path)

        for row in rows[40:]:
            a = {(f.constraint.values, f.subspace) for f in straight.facts_for(row)}
            b = {(f.constraint.values, f.subspace) for f in resumed.facts_for(row)}
            assert a == b


class TestFileBackedRetraction:
    def test_fstopdown_delete_matches_replay(self, tmp_path):
        schema = synthetic_schema(2, 2)
        rows = synthetic_rows(20, 2, 2, cardinalities=[3, 3], seed=6)
        algo = FSTopDown(schema, directory=str(tmp_path / "a"))
        algo.process_stream(rows)
        algo.retract(0)
        algo.retract(5)

        replay = FSTopDown(schema, directory=str(tmp_path / "b"))
        kept = [row for i, row in enumerate(rows) if i not in (0, 5)]
        replay.process_stream(kept)

        def content(a):
            out = {}
            for key, records in a.store.iter_pairs():
                out.setdefault(key, set()).update((r.dims, r.raw) for r in records)
            return out

        assert content(algo) == content(replay)
        algo.close()
        replay.close()


class TestLongStreamStability:
    def test_three_hundred_tuples_all_consistent(self):
        """Longer-run smoke: facts agree between the two families and
        counters/stores stay self-consistent throughout."""
        schema = nba_schema(4, 4)
        config = DiscoveryConfig(max_bound_dims=3, max_measure_dims=3)
        rows = nba_rows(300, d=4, m=4, seed=77)
        a = make_algorithm("sbottomup", schema, config)
        b = make_algorithm("stopdown", schema, config)
        for i, row in enumerate(rows):
            fa = a.process(dict(row)).pairs
            fb = b.process(dict(row)).pairs
            assert fa == fb, f"divergence at tuple {i}"
        assert a.counters.stored_tuples == a.store.stored_tuple_count()
        assert b.stored_tuple_count() <= a.stored_tuple_count()


class TestEndToEndPipeline:
    def test_csv_to_headlines(self, tmp_path):
        """CSV in, narrated prominent headlines out — the full product
        path a newsroom would run."""
        from repro.datasets import save_rows
        from repro.reporting import NewsFeed

        schema = nba_schema(4, 4)
        path = str(tmp_path / "games.csv")
        save_rows(path, schema, nba_rows(120, d=4, m=4))

        from repro.datasets import load_rows

        feed = NewsFeed(schema, tau=10.0, max_bound_dims=2, max_measure_dims=2)
        for row in load_rows(path, schema):
            feed.push(row)
        assert len(feed) > 0
        assert all(h.fact.prominence >= 10.0 for h in feed.headlines)
        assert all(h.text.endswith(".") for h in feed.headlines)
