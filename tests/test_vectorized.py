"""Tests for the NumPy tuple-at-a-time baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DiscoveryConfig, TableSchema, make_algorithm
from repro.algorithms.vectorized import VectorizedBaseline

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))

row_strategy = st.fixed_dictionaries(
    {
        "d0": st.sampled_from(["a", "b", "c"]),
        "d1": st.sampled_from(["x", "y"]),
        "m0": st.integers(min_value=0, max_value=4),
        "m1": st.integers(min_value=0, max_value=4),
    }
)


class TestEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(row_strategy, min_size=1, max_size=16))
    def test_matches_bruteforce(self, rows):
        ref = make_algorithm("bruteforce", SCHEMA)
        vec = make_algorithm("baselinevec", SCHEMA)
        expected = [fs.pairs for fs in ref.process_stream(rows)]
        got = [fs.pairs for fs in vec.process_stream(rows)]
        assert got == expected

    def test_matches_on_paper_example(self, gamelog_schema, gamelog_rows):
        ref = make_algorithm("bruteforce", gamelog_schema)
        vec = make_algorithm("baselinevec", gamelog_schema)
        expected = [fs.pairs for fs in ref.process_stream(gamelog_rows)]
        got = [fs.pairs for fs in vec.process_stream(gamelog_rows)]
        assert got == expected

    @settings(max_examples=15, deadline=None)
    @given(st.lists(row_strategy, min_size=1, max_size=12))
    def test_matches_under_caps(self, rows):
        cfg = DiscoveryConfig(max_bound_dims=1, max_measure_dims=1)
        ref = make_algorithm("bruteforce", SCHEMA, cfg)
        vec = make_algorithm("baselinevec", SCHEMA, cfg)
        assert [fs.pairs for fs in vec.process_stream(rows)] == [
            fs.pairs for fs in ref.process_stream(rows)
        ]


class TestInternals:
    def test_array_growth_preserves_history(self):
        from repro.algorithms import vectorized

        vec = VectorizedBaseline(SCHEMA)
        n = vectorized._INITIAL_CAPACITY + 10
        rows = [
            {"d0": "a", "d1": "x", "m0": i % 5, "m1": (i * 7) % 5}
            for i in range(n)
        ]
        vec.process_stream(rows)
        assert vec._size == n
        assert len(vec.table) == n
        # History still consulted correctly after growth.
        ref = make_algorithm("bruteforce", SCHEMA)
        ref.process_stream(rows)
        probe = {"d0": "a", "d1": "x", "m0": 2, "m1": 2}
        assert vec.process(probe).pairs == ref.process(probe).pairs

    def test_reset_clears_arrays(self):
        vec = VectorizedBaseline(SCHEMA)
        vec.process({"d0": "a", "d1": "x", "m0": 1, "m1": 1})
        vec.reset()
        assert vec._size == 0
        assert len(vec.table) == 0

    def test_first_tuple_wins_everything(self):
        vec = VectorizedBaseline(SCHEMA)
        facts = vec.process({"d0": "a", "d1": "x", "m0": 1, "m1": 1})
        assert len(facts) == 4 * 3  # 4 constraints x 3 subspaces

    def test_registered(self):
        assert make_algorithm("baselinevec", SCHEMA).name == "baselinevec"
