"""Failure-injection tests: corrupted files, malformed inputs, misuse."""

import json
import os

import pytest

from repro import Constraint, FactDiscoverer, SchemaError, TableSchema, make_algorithm
from repro.core.record import Record
from repro.extensions.snapshot import load_engine, save_engine
from repro.service.journal import (
    JournalCorruptError,
    JournalWriter,
    read_ops,
    scan_segment,
)
from repro.storage import FileSkylineStore

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))
C1 = Constraint(("a", None))


def rec(tid):
    return Record(tid, ("a", "b"), (1.0, 2.0), (1.0, 2.0))


class TestCorruptFiles:
    def _store_with_file(self, tmp_path):
        store = FileSkylineStore(SCHEMA, directory=str(tmp_path))
        store.insert(C1, 0b11, rec(0))
        store.flush()
        (path,) = [
            os.path.join(tmp_path, f)
            for f in os.listdir(tmp_path)
            if f.endswith(".bin")
        ]
        return store, path

    def test_truncated_file_raises_cleanly(self, tmp_path):
        store, path = self._store_with_file(tmp_path)
        with open(path, "r+b") as fh:
            fh.truncate(2)
        with pytest.raises(ValueError, match="truncated|corrupt"):
            store.get(C1, 0b11)

    def test_appended_garbage_raises_cleanly(self, tmp_path):
        store, path = self._store_with_file(tmp_path)
        with open(path, "ab") as fh:
            fh.write(b"\xde\xad\xbe\xef")
        with pytest.raises(ValueError, match="corrupt"):
            store.get(C1, 0b11)

    def test_deleted_file_is_treated_as_lost_pair(self, tmp_path):
        store, path = self._store_with_file(tmp_path)
        os.remove(path)
        # The pair is registered but its file vanished: read as empty.
        assert list(store.get(C1, 0b11)) == []


class TestCorruptSnapshots:
    def _snapshot(self, tmp_path):
        path = str(tmp_path / "engine.snap")
        engine = FactDiscoverer(SCHEMA, algorithm="svec")
        engine.observe_many(
            [{"d0": "a", "d1": "b", "m0": i, "m1": 9 - i} for i in range(8)]
        )
        save_engine(engine, path)
        engine.close()
        return path

    def test_truncated_snapshot_raises_cleanly(self, tmp_path):
        path = self._snapshot(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
        with pytest.raises(ValueError, match="corrupt|truncated|malformed"):
            load_engine(path)

    def test_garbage_snapshot_names_the_journal(self, tmp_path):
        path = self._snapshot(tmp_path)
        with open(path, "wb") as fh:
            fh.write(b"\xde\xad\xbe\xef not json")
        with pytest.raises(ValueError, match="write-ahead journal"):
            load_engine(path)

    def test_valid_json_missing_sections_raises(self, tmp_path):
        path = self._snapshot(tmp_path)
        with open(path) as fh:
            doc = json.load(fh)
        del doc["rows"]
        with open(path, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(ValueError, match="malformed|missing"):
            load_engine(path)

    def test_wrong_document_type_raises(self, tmp_path):
        path = str(tmp_path / "notes.json")
        with open(path, "w") as fh:
            json.dump({"hello": "world"}, fh)
        with pytest.raises(ValueError, match="snapshot"):
            load_engine(path)


class TestCorruptJournals:
    ROW = {"d0": "a", "d1": "b", "m0": 1, "m1": 2}

    def _journal(self, tmp_path, n=5):
        directory = str(tmp_path / "wal")
        with JournalWriter(directory) as journal:
            for _ in range(n):
                journal.append_ingest(self.ROW)
        return directory

    def _only_segment(self, directory):
        (name,) = os.listdir(directory)
        return os.path.join(directory, name)

    def test_torn_tail_on_newest_segment_is_tolerated(self, tmp_path):
        directory = self._journal(tmp_path)
        with open(self._only_segment(directory), "ab") as fh:
            fh.write(b"\x20\x00\x00")  # truncated frame header
        ops, torn = read_ops(directory)
        assert torn
        assert len(ops) == 5

    def test_mid_file_corruption_raises_with_offset(self, tmp_path):
        directory = self._journal(tmp_path)
        path = self._only_segment(directory)
        # Flip payload bytes of the *first* frame: records follow it, so
        # this is damage, not a torn tail.
        with open(path, "r+b") as fh:
            fh.seek(20)
            fh.write(b"\xff\xff")
        with pytest.raises(JournalCorruptError, match="byte|corrupt"):
            read_ops(directory)

    def test_corruption_on_non_final_segment_raises(self, tmp_path):
        directory = str(tmp_path / "wal")
        with JournalWriter(directory, segment_max_bytes=1024) as journal:
            for _ in range(40):  # forces at least one rotation
                journal.append_ingest(self.ROW)
        segments = sorted(os.listdir(directory))
        assert len(segments) > 1
        # A torn tail is only ever legitimate on the newest segment.
        with open(os.path.join(directory, segments[0]), "r+b") as fh:
            fh.seek(0, os.SEEK_END)
            fh.truncate(fh.tell() - 3)
        with pytest.raises(JournalCorruptError, match="newest segment"):
            read_ops(directory)

    def test_bad_header_raises(self, tmp_path):
        directory = self._journal(tmp_path)
        path = self._only_segment(directory)
        with open(path, "r+b") as fh:
            fh.write(b"NOTWAL!")
        with pytest.raises(JournalCorruptError, match="header"):
            scan_segment(path, tolerate_tail=True)

    def test_writer_resumes_after_torn_tail(self, tmp_path):
        directory = self._journal(tmp_path)
        with open(self._only_segment(directory), "ab") as fh:
            fh.write(b"\x99\x00\x00\x00\x01\x02")
        with JournalWriter(directory) as journal:
            assert journal.last_seq == 5
            journal.append_ingest(self.ROW)
        ops, torn = read_ops(directory)
        assert not torn
        assert [op["seq"] for op in ops] == [1, 2, 3, 4, 5, 6]


class TestMalformedRows:
    def test_missing_attribute(self):
        algo = make_algorithm("bottomup", SCHEMA)
        with pytest.raises(SchemaError):
            algo.process({"d0": "a", "m0": 1, "m1": 1})

    def test_non_numeric_measure(self):
        algo = make_algorithm("bottomup", SCHEMA)
        with pytest.raises(SchemaError):
            algo.process({"d0": "a", "d1": "b", "m0": "lots", "m1": 1})

    def test_failed_process_leaves_table_unchanged(self):
        algo = make_algorithm("bottomup", SCHEMA)
        algo.process({"d0": "a", "d1": "b", "m0": 1, "m1": 1})
        with pytest.raises(SchemaError):
            algo.process({"d0": "a", "d1": "b", "m0": "x", "m1": 1})
        assert len(algo.table) == 1

    def test_none_measure_rejected(self):
        algo = make_algorithm("stopdown", SCHEMA)
        with pytest.raises(SchemaError):
            algo.process({"d0": "a", "d1": "b", "m0": None, "m1": 1})


class TestMisuse:
    def test_unknown_algorithm_lists_options(self):
        with pytest.raises(ValueError) as err:
            make_algorithm("does-not-exist", SCHEMA)
        assert "bottomup" in str(err.value)

    def test_retract_unknown_tid(self):
        algo = make_algorithm("topdown", SCHEMA)
        with pytest.raises(KeyError):
            algo.retract(3)

    def test_double_retract(self):
        algo = make_algorithm("bottomup", SCHEMA)
        algo.process({"d0": "a", "d1": "b", "m0": 1, "m1": 1})
        algo.retract(0)
        with pytest.raises(KeyError):
            algo.retract(0)

    def test_nan_measures_never_dominate_into_facts(self):
        """NaN breaks ordering; inserting one must not corrupt others'
        facts (NaN comparisons are all False, so a NaN row is simply
        incomparable)."""
        algo = make_algorithm("bruteforce", SCHEMA)
        algo.process({"d0": "a", "d1": "b", "m0": float("nan"), "m1": 1})
        facts = algo.process({"d0": "a", "d1": "b", "m0": 5, "m1": 5})
        # The normal tuple is undominated everywhere.
        assert len(facts) == 4 * 3
