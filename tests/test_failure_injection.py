"""Failure-injection tests: corrupted files, malformed inputs, misuse."""

import os

import pytest

from repro import Constraint, SchemaError, TableSchema, make_algorithm
from repro.core.record import Record
from repro.storage import FileSkylineStore

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))
C1 = Constraint(("a", None))


def rec(tid):
    return Record(tid, ("a", "b"), (1.0, 2.0), (1.0, 2.0))


class TestCorruptFiles:
    def _store_with_file(self, tmp_path):
        store = FileSkylineStore(SCHEMA, directory=str(tmp_path))
        store.insert(C1, 0b11, rec(0))
        store.flush()
        (path,) = [
            os.path.join(tmp_path, f)
            for f in os.listdir(tmp_path)
            if f.endswith(".bin")
        ]
        return store, path

    def test_truncated_file_raises_cleanly(self, tmp_path):
        store, path = self._store_with_file(tmp_path)
        with open(path, "r+b") as fh:
            fh.truncate(2)
        with pytest.raises(ValueError, match="truncated|corrupt"):
            store.get(C1, 0b11)

    def test_appended_garbage_raises_cleanly(self, tmp_path):
        store, path = self._store_with_file(tmp_path)
        with open(path, "ab") as fh:
            fh.write(b"\xde\xad\xbe\xef")
        with pytest.raises(ValueError, match="corrupt"):
            store.get(C1, 0b11)

    def test_deleted_file_is_treated_as_lost_pair(self, tmp_path):
        store, path = self._store_with_file(tmp_path)
        os.remove(path)
        # The pair is registered but its file vanished: read as empty.
        assert list(store.get(C1, 0b11)) == []


class TestMalformedRows:
    def test_missing_attribute(self):
        algo = make_algorithm("bottomup", SCHEMA)
        with pytest.raises(SchemaError):
            algo.process({"d0": "a", "m0": 1, "m1": 1})

    def test_non_numeric_measure(self):
        algo = make_algorithm("bottomup", SCHEMA)
        with pytest.raises(SchemaError):
            algo.process({"d0": "a", "d1": "b", "m0": "lots", "m1": 1})

    def test_failed_process_leaves_table_unchanged(self):
        algo = make_algorithm("bottomup", SCHEMA)
        algo.process({"d0": "a", "d1": "b", "m0": 1, "m1": 1})
        with pytest.raises(SchemaError):
            algo.process({"d0": "a", "d1": "b", "m0": "x", "m1": 1})
        assert len(algo.table) == 1

    def test_none_measure_rejected(self):
        algo = make_algorithm("stopdown", SCHEMA)
        with pytest.raises(SchemaError):
            algo.process({"d0": "a", "d1": "b", "m0": None, "m1": 1})


class TestMisuse:
    def test_unknown_algorithm_lists_options(self):
        with pytest.raises(ValueError) as err:
            make_algorithm("does-not-exist", SCHEMA)
        assert "bottomup" in str(err.value)

    def test_retract_unknown_tid(self):
        algo = make_algorithm("topdown", SCHEMA)
        with pytest.raises(KeyError):
            algo.retract(3)

    def test_double_retract(self):
        algo = make_algorithm("bottomup", SCHEMA)
        algo.process({"d0": "a", "d1": "b", "m0": 1, "m1": 1})
        algo.retract(0)
        with pytest.raises(KeyError):
            algo.retract(0)

    def test_nan_measures_never_dominate_into_facts(self):
        """NaN breaks ordering; inserting one must not corrupt others'
        facts (NaN comparisons are all False, so a NaN row is simply
        incomparable)."""
        algo = make_algorithm("bruteforce", SCHEMA)
        algo.process({"d0": "a", "d1": "b", "m0": float("nan"), "m1": 1})
        facts = algo.process({"d0": "a", "d1": "b", "m0": 5, "m1": 5})
        # The normal tuple is undominated everywhere.
        assert len(facts) == 4 * 3
