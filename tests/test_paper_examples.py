"""End-to-end checks against every worked example in the paper.

Covers Example 1 (Table I), Examples 2-3 (Table IV selections/skylines),
Examples 5-6 (lattice structure), Examples 7-10 (BottomUp / TopDown /
STopDown store states of Figs. 3-6), and the §VII prominence numbers.
"""

import pytest

from repro import Constraint, TableSchema, make_algorithm
from repro.core.constraint import constraint_for_record
from repro.core.lattice import agreement_mask, iter_submasks
from repro.core.record import Record


def _stored_tids(algo, values, subspace):
    return {r.tid for r in algo.store.get(Constraint(values), subspace)}


class TestExample1TableI:
    """Example 1: the 7-tuple basketball mini-world."""

    def test_t7_memberships(self, gamelog_schema, gamelog_rows):
        algo = make_algorithm("bruteforce", gamelog_schema)
        results = algo.process_stream(gamelog_rows)
        s_t7 = results[-1].pairs
        full = gamelog_schema.measure_mask(("points", "assists", "rebounds"))
        ar = gamelog_schema.measure_mask(("assists", "rebounds"))
        feb = Constraint.from_mapping(gamelog_schema, {"month": "Feb"})
        celtics_nets = Constraint.from_mapping(
            gamelog_schema, {"team": "Celtics", "opp_team": "Nets"}
        )
        top = Constraint.top(5)
        # "with regard to context month=Feb and M, t7 is in the skyline"
        assert (feb, full) in s_t7
        # "in context team=Celtics ∧ opp_team=Nets under {assists,rebounds}"
        assert (celtics_nets, ar) in s_t7
        # "if the context is the whole table ... t7 is not a skyline tuple"
        assert (top, full) not in s_t7

    def test_t7_fact_count(self, gamelog_schema, gamelog_rows):
        """§VII says t7 belongs to 196 contextual skylines.  Exact
        enumeration over the 224 pairs gives 195 (inclusion-exclusion
        over the dominators t2/t3/t6 leaves 29 dominated pairs; the
        paper's 196 appears to be an off-by-one).  We pin the exact
        value, cross-checked by all algorithms."""
        for name in ("bruteforce", "stopdown"):
            algo = make_algorithm(name, gamelog_schema)
            results = algo.process_stream(gamelog_rows)
            assert len(results[-1]) == 195

    def test_month_feb_skyline_is_t2_t7(self, gamelog_schema, gamelog_rows):
        """§IV tuple reduction example: under month=Feb and full M the
        contextual skyline is {t1, t2} before t7 and {t2, t7}-ish after
        (t1 stays: 4/12/5 vs t7's 12/13/5 — t7 dominates t1)."""
        algo = make_algorithm("bottomup", gamelog_schema)
        results = algo.process_stream(gamelog_rows)
        feb = Constraint.from_mapping(gamelog_schema, {"month": "Feb"})
        full = gamelog_schema.full_measure_mask
        stored = {r.tid for r in algo.store.get(feb, full)}
        # Paper (Sec. IV): before t7 the Feb skyline is {t1, t2}; t7
        # dominates t1 (12≥4, 13≥12, 5≥5, strict on two) so afterwards
        # the skyline is {t2, t7}.
        assert stored == {1, 6}  # tids of t2 and t7 (0-based arrival)


class TestExample2SelectionsAndSkylines:
    def test_sigma_selection(self, running_example_schema, running_example_rows):
        algo = make_algorithm("bottomup", running_example_schema)
        algo.process_stream(running_example_rows)
        c = Constraint(("a1", None, "c1"))
        got = {r.tid for r in algo.table.select_constraint(c)}
        assert got == {1, 4}  # t2 and t5 (0-based)


class TestExample6LatticeIntersection:
    def test_intersection_bottom(self):
        t4 = Record(3, ("a2", "b1", "c1"), (20.0, 20.0), (20, 20))
        t5 = Record(4, ("a1", "b1", "c1"), (11.0, 15.0), (11, 15))
        agree = agreement_mask(t4.dims, t5.dims)
        assert agree == 0b110  # d2, d3 agree
        bottom = constraint_for_record(t5, agree)
        assert bottom.values == (None, "b1", "c1")
        # The intersection lattice C^{t4,t5} is the submask family.
        members = {constraint_for_record(t5, s).values for s in iter_submasks(agree)}
        assert members == {
            (None, "b1", "c1"),
            (None, "b1", None),
            (None, None, "c1"),
            (None, None, None),
        }


class TestExample7BottomUpStores:
    """Fig. 3: µ_{C,M} around t5's arrival, M = {m1,m2}."""

    FULL = 0b11

    def _run(self, schema, rows, upto):
        algo = make_algorithm("bottomup", schema)
        algo.process_stream(rows[:upto])
        return algo

    def test_before_t5(self, running_example_schema, running_example_rows):
        algo = self._run(running_example_schema, running_example_rows, 4)
        # tids: t1=0, t2=1, t3=2, t4=3, t5=4
        assert _stored_tids(algo, (None, None, None), self.FULL) == {3}
        assert _stored_tids(algo, ("a1", None, None), self.FULL) == {0, 1}
        assert _stored_tids(algo, (None, "b1", None), self.FULL) == {3}
        assert _stored_tids(algo, (None, None, "c1"), self.FULL) == {3}
        assert _stored_tids(algo, ("a1", "b1", None), self.FULL) == {1}
        assert _stored_tids(algo, ("a1", None, "c1"), self.FULL) == {1}
        assert _stored_tids(algo, (None, "b1", "c1"), self.FULL) == {3}
        assert _stored_tids(algo, ("a1", "b1", "c1"), self.FULL) == {1}

    def test_after_t5(self, running_example_schema, running_example_rows):
        algo = self._run(running_example_schema, running_example_rows, 5)
        assert _stored_tids(algo, (None, None, None), self.FULL) == {3}
        assert _stored_tids(algo, ("a1", None, None), self.FULL) == {1, 4}
        assert _stored_tids(algo, (None, "b1", None), self.FULL) == {3}
        assert _stored_tids(algo, ("a1", "b1", None), self.FULL) == {1, 4}
        assert _stored_tids(algo, ("a1", None, "c1"), self.FULL) == {1, 4}
        assert _stored_tids(algo, (None, "b1", "c1"), self.FULL) == {3}
        assert _stored_tids(algo, ("a1", "b1", "c1"), self.FULL) == {1, 4}


class TestExample9TopDownStores:
    """Fig. 4: maximal-constraint stores around t5's arrival."""

    FULL = 0b11

    @pytest.mark.parametrize("name", ["topdown", "stopdown"])
    def test_before_t5(self, running_example_schema, running_example_rows, name):
        algo = make_algorithm(name, running_example_schema)
        algo.process_stream(running_example_rows[:4])
        assert _stored_tids(algo, (None, None, None), self.FULL) == {3}
        assert _stored_tids(algo, ("a1", None, None), self.FULL) == {0, 1}
        assert _stored_tids(algo, (None, "b2", None), self.FULL) == {0}
        assert _stored_tids(algo, (None, None, "c2"), self.FULL) == {2}
        for empty in [
            (None, "b1", None),
            (None, None, "c1"),
            ("a1", "b1", None),
            ("a1", None, "c1"),
            ("a1", "b2", None),
            ("a1", None, "c2"),
            ("a1", "b1", "c1"),
        ]:
            assert _stored_tids(algo, empty, self.FULL) == set()

    @pytest.mark.parametrize("name", ["topdown", "stopdown"])
    def test_after_t5(self, running_example_schema, running_example_rows, name):
        algo = make_algorithm(name, running_example_schema)
        algo.process_stream(running_example_rows)
        assert _stored_tids(algo, (None, None, None), self.FULL) == {3}
        assert _stored_tids(algo, ("a1", None, None), self.FULL) == {1, 4}
        assert _stored_tids(algo, (None, "b2", None), self.FULL) == {0}
        assert _stored_tids(algo, (None, None, "c2"), self.FULL) == {2}
        # t1 deleted from ⟨a1,*,*⟩ and re-anchored at ⟨a1,*,c2⟩ only
        # (⟨a1,b2,*⟩ is covered by its ancestor ⟨*,b2,*⟩).
        assert _stored_tids(algo, ("a1", None, "c2"), self.FULL) == {0}
        assert _stored_tids(algo, ("a1", "b2", None), self.FULL) == set()
        for empty in [
            (None, "b1", None),
            (None, None, "c1"),
            ("a1", "b1", None),
            ("a1", None, "c1"),
            ("a1", "b1", "c1"),
        ]:
            assert _stored_tids(algo, empty, self.FULL) == set()


class TestExample10STopDownSubspaces:
    """Figs. 5-6: subspace stores after t5 under STopDown."""

    def test_m1_unchanged(self, running_example_schema, running_example_rows):
        algo = make_algorithm("stopdown", running_example_schema)
        algo.process_stream(running_example_rows)
        m1 = 0b01
        assert _stored_tids(algo, (None, None, None), m1) == {3}
        assert _stored_tids(algo, ("a1", None, None), m1) == {1}
        for empty in [
            (None, "b1", None),
            (None, None, "c1"),
            ("a1", "b1", None),
            ("a1", None, "c1"),
            ("a1", "b1", "c1"),
        ]:
            assert _stored_tids(algo, empty, m1) == set()

    def test_m2_gains_t5(self, running_example_schema, running_example_rows):
        algo = make_algorithm("stopdown", running_example_schema)
        algo.process_stream(running_example_rows)
        m2 = 0b10
        assert _stored_tids(algo, (None, None, None), m2) == {3}
        assert _stored_tids(algo, ("a1", None, None), m2) == {0, 4}
        for empty in [
            (None, "b1", None),
            (None, None, "c1"),
            ("a1", "b1", None),
            ("a1", None, "c1"),
            ("a1", "b1", "c1"),
        ]:
            assert _stored_tids(algo, empty, m2) == set()

    def test_example_8_skyline_constraints_of_t5(
        self, running_example_schema, running_example_rows
    ):
        """SC^{t5}_{m1,m2} = {a1, a1b1, a1c1, a1b1c1}; MSC = {a1}."""
        algo = make_algorithm("stopdown", running_example_schema)
        results = algo.process_stream(running_example_rows)
        full = 0b11
        sky_masks = {
            f.constraint.values for f in results[-1] if f.subspace == full
        }
        assert sky_masks == {
            ("a1", None, None),
            ("a1", "b1", None),
            ("a1", None, "c1"),
            ("a1", "b1", "c1"),
        }


class TestSectionVIIProminence:
    def test_prominence_values(self, gamelog_schema, gamelog_rows):
        """(month=Feb, {p,a,r}) has prominence 5/2; (team=Celtics ∧
        opp_team=Nets, {a,r}) has 3/2 (§VII)."""
        from repro import DiscoveryConfig, FactDiscoverer

        engine = FactDiscoverer(gamelog_schema, algorithm="bottomup")
        for row in gamelog_rows[:-1]:
            engine.observe(row)
        facts = engine.facts_for(gamelog_rows[-1])
        by_pair = {f.pair: f for f in facts}
        feb = Constraint.from_mapping(gamelog_schema, {"month": "Feb"})
        full = gamelog_schema.measure_mask(("points", "assists", "rebounds"))
        fact = by_pair[(feb, full)]
        assert fact.context_size == 5
        assert fact.skyline_size == 2
        assert fact.prominence == pytest.approx(2.5)
        cn = Constraint.from_mapping(
            gamelog_schema, {"team": "Celtics", "opp_team": "Nets"}
        )
        ar = gamelog_schema.measure_mask(("assists", "rebounds"))
        fact = by_pair[(cn, ar)]
        assert fact.context_size == 3
        assert fact.skyline_size == 2
        assert fact.prominence == pytest.approx(1.5)

    def test_highest_prominence(self, gamelog_schema, gamelog_rows):
        """§VII claims the highest prominence in S_t7 is 3 with
        (player=Wesley, {rebounds}) among the winners.  Exact
        computation gives 5: under (month=Feb, {assists}) the context
        holds 5 tuples and t7 (13 assists) is its lone skyline tuple.
        Like the 196-vs-195 count, the paper's toy number is slightly
        off; we pin the exact values and still verify the example fact
        (player=Wesley, {rebounds}) attains prominence 3."""
        from repro import FactDiscoverer

        engine = FactDiscoverer(gamelog_schema, algorithm="stopdown")
        for row in gamelog_rows[:-1]:
            engine.observe(row)
        facts = engine.facts_for(gamelog_rows[-1])
        best = max(f.prominence for f in facts)
        assert best == pytest.approx(5.0)
        by_pair = {f.pair: f for f in facts}
        feb = Constraint.from_mapping(gamelog_schema, {"month": "Feb"})
        assists = gamelog_schema.measure_mask(("assists",))
        assert by_pair[(feb, assists)].prominence == pytest.approx(5.0)
        wesley = Constraint.from_mapping(gamelog_schema, {"player": "Wesley"})
        reb = gamelog_schema.measure_mask(("rebounds",))
        assert by_pair[(wesley, reb)].prominence == pytest.approx(3.0)
        assert by_pair[(wesley, reb)].context_size == 3
