"""StreamServer behaviour: micro-batching, backpressure, drain,
subscriptions, checkpoint round-trips, and the NDJSON TCP front-end."""

import asyncio
import json

import pytest

from repro import DiscoveryConfig, FactDiscoverer, TableSchema
from repro.core.schema import SchemaError
from repro.extensions.snapshot import load_engine
from repro.service import ShardedDiscoverer, StreamServer

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))


def make_rows(n):
    return [
        {"d0": f"a{i % 3}", "d1": f"b{i % 2}", "m0": i % 5, "m1": (7 - i) % 5}
        for i in range(n)
    ]


def fact_key(fact):
    return (fact.constraint.values, fact.subspace, fact.prominence)


class TestMicroBatching:
    def test_output_equals_direct_engine(self):
        rows = make_rows(30)
        direct = FactDiscoverer(SCHEMA, algorithm="svec")
        expected = [[fact_key(f) for f in fs] for fs in direct.observe_many(rows)]

        async def run():
            server = StreamServer(
                FactDiscoverer(SCHEMA, algorithm="svec"),
                batch_max=8,
                batch_window=0.001,
            )
            await server.start()
            sub = server.subscribe(only_facts=False)
            await server.ingest_many(rows)
            await server.stop()  # drains, then closes the subscription
            events = [event async for event in sub]
            return events, server

        events, server = asyncio.run(run())
        assert len(events) == len(rows)
        assert [e.tid for e in events] == list(range(len(rows)))
        got = [[fact_key(f) for f in e.facts] for e in events]
        assert got == expected
        assert server.stats.processed_rows == len(rows)
        assert server.stats.batches <= len(rows)
        assert server.stats.facts_emitted == sum(len(g) for g in got)

    def test_batches_coalesce_under_load(self):
        rows = make_rows(40)

        async def run():
            server = StreamServer(
                FactDiscoverer(SCHEMA, algorithm="svec"),
                queue_limit=64,
                batch_max=16,
                batch_window=0.05,
            )
            await server.start()
            # Enqueue everything before the consumer can drain it —
            # batches must coalesce well beyond one row each.
            for row in rows:
                await server.ingest(row)
            await server.stop()
            return server

        server = asyncio.run(run())
        assert server.stats.processed_rows == len(rows)
        assert server.stats.batches < len(rows)
        assert server.stats.batch_rows_max > 1

    def test_ingest_wait_returns_event(self):
        async def run():
            server = StreamServer(FactDiscoverer(SCHEMA, algorithm="svec"))
            await server.start()
            event = await server.ingest_wait(make_rows(1)[0])
            await server.stop()
            return event

        event = asyncio.run(run())
        assert event.tid == 0
        assert event.facts  # the first arrival is always reportable

    def test_slow_subscriber_buffer_is_bounded(self):
        rows = make_rows(20)

        async def run():
            server = StreamServer(FactDiscoverer(SCHEMA, algorithm="svec"))
            await server.start()
            sub = server.subscribe(only_facts=False, max_pending=5)
            await server.ingest_many(rows)
            await server.drain()
            await server.stop()
            events = [event async for event in sub]
            return sub, events

        sub, events = asyncio.run(run())
        # Oldest events were dropped; the newest max_pending survive.
        assert len(events) == 5
        assert sub.dropped == len(rows) - 5
        assert [e.tid for e in events] == list(range(15, 20))

    def test_invalid_row_rejected_at_ingest(self):
        async def run():
            server = StreamServer(FactDiscoverer(SCHEMA, algorithm="svec"))
            await server.start()
            with pytest.raises(SchemaError):
                await server.ingest({"bogus": 1})
            await server.stop()
            return server

        server = asyncio.run(run())
        assert server.stats.enqueued == 0


class TestBackpressureAndDrain:
    def test_queue_stays_bounded_under_fast_producer(self):
        rows = make_rows(60)
        limit = 4

        async def run():
            server = StreamServer(
                FactDiscoverer(SCHEMA, algorithm="svec"),
                queue_limit=limit,
                batch_max=4,
                batch_window=0.0,
            )
            await server.start()
            for row in rows:
                await server.ingest(row)  # awaits whenever the queue is full
            await server.stop()
            return server

        server = asyncio.run(run())
        assert server.stats.processed_rows == len(rows)
        assert server.stats.queue_depth_max <= limit

    def test_graceful_drain_on_stop(self):
        rows = make_rows(25)

        async def run():
            engine = FactDiscoverer(SCHEMA, algorithm="svec")
            server = StreamServer(engine, queue_limit=64, batch_max=8)
            await server.start()
            for row in rows:
                await server.ingest(row)
            # Stop immediately: drain must still discover every row.
            await server.stop(drain=True)
            return engine, server

        engine, server = asyncio.run(run())
        assert len(engine.table) == len(rows)
        assert server.stats.processed_rows == len(rows)

    def test_deletion_fences_batches(self):
        rows = make_rows(10)

        async def run():
            engine = FactDiscoverer(SCHEMA, algorithm="svec")
            server = StreamServer(engine, batch_max=32, batch_window=0.05)
            await server.start()
            for row in rows[:5]:
                await server.ingest(row)
            await server.delete(2)
            for row in rows[5:]:
                await server.ingest(row)
            await server.stop()
            return engine, server

        engine, server = asyncio.run(run())
        assert server.stats.deletes == 1
        assert len(engine.table) == len(rows) - 1
        assert all(record.tid != 2 for record in engine.table)

    def test_delete_unknown_tid_raises(self):
        async def run():
            server = StreamServer(FactDiscoverer(SCHEMA, algorithm="svec"))
            await server.start()
            with pytest.raises(KeyError):
                await server.delete(99)
            await server.stop()

        asyncio.run(run())


class TestCheckpointing:
    def test_periodic_checkpoint_and_restore(self, tmp_path):
        rows = make_rows(20)
        path = str(tmp_path / "ckpt.json")

        async def run():
            engine = ShardedDiscoverer(
                SCHEMA,
                DiscoveryConfig(max_bound_dims=1),
                n_workers=2,
                mode="serial",
            )
            server = StreamServer(
                engine,
                checkpoint_path=path,
                checkpoint_interval=0.02,
                batch_max=4,
            )
            await server.start()
            await server.ingest_many(rows)
            await server.drain()
            await asyncio.sleep(0.05)  # let the periodic checkpointer fire
            await server.stop()
            return engine, server

        engine, server = asyncio.run(run())
        assert server.stats.checkpoints >= 1
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["format_version"] == 3
        assert doc["spec"]["sharding"]["workers"] == 2
        assert doc["spec"]["sharding"]["mode"] == "serial"
        assert doc["spec"]["score"] is True
        restored = load_engine(path)
        assert isinstance(restored, ShardedDiscoverer)
        assert len(restored.table) == len(engine.table)
        assert restored.config.max_bound_dims == 1
        # Same future behaviour after restore.
        probe = {"d0": "zz", "d1": "b0", "m0": 4, "m1": 4}
        assert [fact_key(f) for f in restored.observe(probe)] == [
            fact_key(f) for f in engine.observe(probe)
        ]
        restored.close()
        engine.close()


class TestSnapshotVersions:
    def test_v1_snapshot_still_loads(self, tmp_path):
        """Version-1 files (no meta section) load with old defaults."""
        engine = FactDiscoverer(SCHEMA, algorithm="stopdown")
        rows = make_rows(5)
        for row in rows:
            engine.observe(row)
        doc = {
            "format_version": 1,
            "algorithm": "stopdown",
            "schema": {
                "dimensions": list(SCHEMA.dimensions),
                "measures": list(SCHEMA.measures),
                "preferences": {},
            },
            "config": {
                "max_bound_dims": None,
                "max_measure_dims": None,
                "tau": None,
                "top_k": None,
            },
            "rows": [r.as_dict(SCHEMA) for r in engine.table],
        }
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(doc))
        loaded = load_engine(str(path))
        assert isinstance(loaded, FactDiscoverer)
        assert loaded.score is True
        assert len(loaded.table) == len(rows)
        probe = {"d0": "q", "d1": "b1", "m0": 4, "m1": 4}
        assert [fact_key(f) for f in loaded.observe(probe)] == [
            fact_key(f) for f in engine.observe(probe)
        ]

    def test_v2_snapshot_still_loads(self, tmp_path):
        """Version-2 files (``meta`` section) load, sharded meta
        restoring a sharded engine."""
        engine = ShardedDiscoverer(SCHEMA, n_workers=2, mode="serial")
        rows = make_rows(5)
        engine.observe_many(rows)
        doc = {
            "format_version": 2,
            "algorithm": "svec",
            "meta": {"score": True, "engine": "sharded",
                     "n_workers": 2, "mode": "serial"},
            "schema": {
                "dimensions": list(SCHEMA.dimensions),
                "measures": list(SCHEMA.measures),
                "preferences": {},
            },
            "config": {
                "max_bound_dims": None,
                "max_measure_dims": None,
                "tau": None,
                "top_k": None,
            },
            "rows": [r.as_dict(SCHEMA) for r in engine.table],
        }
        path = tmp_path / "v2.json"
        path.write_text(json.dumps(doc))
        loaded = load_engine(str(path))
        assert isinstance(loaded, ShardedDiscoverer)
        assert loaded.n_workers == 2 and loaded.mode == "serial"
        probe = {"d0": "q", "d1": "b1", "m0": 4, "m1": 4}
        assert [fact_key(f) for f in loaded.observe(probe)] == [
            fact_key(f) for f in engine.observe(probe)
        ]
        loaded.close()
        engine.close()

    def test_v3_score_flag_round_trips(self, tmp_path):
        from repro.extensions.snapshot import save_engine

        engine = FactDiscoverer(SCHEMA, algorithm="svec", score=False)
        engine.observe(make_rows(1)[0])
        path = str(tmp_path / "unscored.json")
        save_engine(engine, path)
        doc = json.loads(open(path).read())
        assert doc["format_version"] == 3
        assert doc["spec"]["score"] is False
        assert doc["spec"]["algorithm"] == "svec"
        loaded = load_engine(path)
        assert loaded.score is False
        # Explicit override still wins.
        assert load_engine(path, score=True).score is True


class TestTcpFrontend:
    def test_ndjson_round_trip(self):
        rows = make_rows(6)

        async def run():
            engine = ShardedDiscoverer(SCHEMA, n_workers=2, mode="serial")
            server = StreamServer(engine)
            await server.start()
            listener = await server.serve_tcp("127.0.0.1", 0)
            port = listener.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)

            async def call(payload):
                writer.write(json.dumps(payload).encode() + b"\n")
                await writer.drain()
                return json.loads(await reader.readline())

            replies = [await call({"op": "ingest", "row": row}) for row in rows]
            bare = await call(rows[0])  # bare row == ingest op
            bad = await call({"op": "ingest", "row": {"nope": 1}})
            # Malformed payloads get error replies, not a dead socket.
            bad_type = await call({"op": "ingest", "row": 5})
            bad_tid = await call({"op": "delete", "tid": None})
            assert "error" in bad_type and "error" in bad_tid
            deleted = await call({"op": "delete", "tid": 1})
            stats = await call({"op": "stats"})
            stopping = await call({"op": "shutdown"})
            writer.close()
            await server.wait_stopped()
            engine.close()
            return replies, bare, bad, deleted, stats, stopping, engine

        replies, bare, bad, deleted, stats, stopping, engine = asyncio.run(run())
        assert [r["tid"] for r in replies] == list(range(6))
        assert all("facts" in r for r in replies)
        assert replies[0]["facts"]  # first arrival dominates everything
        assert bare["tid"] == 6
        assert "error" in bad
        assert deleted == {"deleted": 1}
        assert stats["stats"]["processed_rows"] == 7
        assert stats["stats"]["deletes"] == 1
        assert "shard_utilization" in stats["stats"]
        assert stopping == {"stopping": True}
        assert len(engine.table) == 6  # 7 arrivals − 1 deletion
