"""Property tests for the paper's storage invariants.

* Invariant 1 (BottomUp / SBottomUp): after any stream prefix,
  ``µ_{C,M}`` equals the recomputed contextual skyline ``λ_M(σ_C(R))``
  for every allowed pair touched by any tuple.
* Invariant 2 (TopDown / STopDown): ``µ_{C,M}`` holds a tuple exactly at
  its *maximal* skyline constraints.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TableSchema, make_algorithm
from repro.core.constraint import Constraint, satisfied_constraints
from repro.core.lattice import nonempty_subspaces
from repro.core.skyline import contextual_skyline

row_strategy = st.fixed_dictionaries(
    {
        "d0": st.sampled_from(["a", "b", "c"]),
        "d1": st.sampled_from(["x", "y"]),
        "m0": st.integers(min_value=0, max_value=3),
        "m1": st.integers(min_value=0, max_value=3),
    }
)

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))


def all_touched_constraints(records):
    out = set()
    for record in records:
        out.update(satisfied_constraints(record))
    return out


def maximal_skyline_constraints(records, record, subspace):
    """MSC^t_M recomputed from scratch (Defs. 9-10)."""
    skyline_constraints = set()
    for constraint in satisfied_constraints(record):
        sky = contextual_skyline(records, constraint, subspace)
        if any(r.tid == record.tid for r in sky):
            skyline_constraints.add(constraint)
    return {
        c
        for c in skyline_constraints
        if not any(
            other != c and c.subsumed_by(other) for other in skyline_constraints
        )
    }


class TestInvariant1:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(row_strategy, min_size=1, max_size=14))
    @pytest.mark.parametrize("name", ["bottomup", "sbottomup"])
    def test_store_equals_contextual_skylines(self, name, rows):
        algo = make_algorithm(name, SCHEMA)
        algo.process_stream(rows)
        records = list(algo.table)
        for constraint in all_touched_constraints(records):
            for subspace in nonempty_subspaces(SCHEMA.full_measure_mask):
                expected = {
                    r.tid
                    for r in contextual_skyline(records, constraint, subspace)
                }
                stored = {r.tid for r in algo.store.get(constraint, subspace)}
                assert stored == expected, (constraint, subspace)

    def test_store_after_paper_example(
        self, running_example_schema, running_example_rows
    ):
        algo = make_algorithm("bottomup", running_example_schema)
        algo.process_stream(running_example_rows)
        records = list(algo.table)
        for constraint in all_touched_constraints(records):
            for subspace in (0b01, 0b10, 0b11):
                expected = {
                    r.tid for r in contextual_skyline(records, constraint, subspace)
                }
                stored = {r.tid for r in algo.store.get(constraint, subspace)}
                assert stored == expected


class TestInvariant2:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(row_strategy, min_size=1, max_size=14))
    @pytest.mark.parametrize("name", ["topdown", "stopdown", "svec"])
    def test_store_holds_exactly_maximal_constraints(self, name, rows):
        algo = make_algorithm(name, SCHEMA)
        algo.process_stream(rows)
        records = list(algo.table)
        for subspace in nonempty_subspaces(SCHEMA.full_measure_mask):
            # Expected anchoring, tuple by tuple.
            expected_pairs = set()
            for record in records:
                for c in maximal_skyline_constraints(records, record, subspace):
                    expected_pairs.add((c, record.tid))
            stored_pairs = set()
            for constraint in all_touched_constraints(records):
                for r in algo.store.get(constraint, subspace):
                    stored_pairs.add((constraint, r.tid))
            assert stored_pairs == expected_pairs, subspace

    def test_no_tuple_stored_at_two_comparable_constraints(
        self, gamelog_schema, gamelog_rows
    ):
        """Maximal anchors are pairwise incomparable per tuple."""
        algo = make_algorithm("topdown", gamelog_schema)
        algo.process_stream(gamelog_rows)
        anchors = {}
        for (constraint, subspace), records in algo.store.iter_pairs():
            for r in records:
                anchors.setdefault((r.tid, subspace), []).append(constraint)
        for (_tid, _sub), constraints in anchors.items():
            for i, c1 in enumerate(constraints):
                for c2 in constraints[i + 1 :]:
                    assert not c1.subsumed_by(c2)
                    assert not c2.subsumed_by(c1)


class TestStorageAsymmetry:
    """Fig. 10b's premise: bottom-up stores strictly more references."""

    def test_bottomup_stores_at_least_topdown(self, gamelog_schema, gamelog_rows):
        bu = make_algorithm("bottomup", gamelog_schema)
        td = make_algorithm("topdown", gamelog_schema)
        bu.process_stream(gamelog_rows)
        td.process_stream(gamelog_rows)
        assert bu.stored_tuple_count() >= td.stored_tuple_count()

    def test_sharing_variants_store_identically(
        self, gamelog_schema, gamelog_rows
    ):
        """TopDown and STopDown use the same materialisation scheme
        (§VI-B), as do BottomUp and SBottomUp — when m̂ = m (the full
        space is maintained by both)."""
        for base, shared in (
            ("bottomup", "sbottomup"),
            ("topdown", "stopdown"),
            ("topdown", "svec"),
        ):
            a = make_algorithm(base, gamelog_schema)
            b = make_algorithm(shared, gamelog_schema)
            a.process_stream(gamelog_rows)
            b.process_stream(gamelog_rows)
            snap_a = {
                key: {r.tid for r in recs} for key, recs in a.store.iter_pairs()
            }
            snap_b = {
                key: {r.tid for r in recs} for key, recs in b.store.iter_pairs()
            }
            assert snap_a == snap_b, base
