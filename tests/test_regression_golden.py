"""Golden regression tests: deterministic outputs pinned on synthetic
streams.

The generators are seeded, so exact fact counts, store sizes, and
prominence statistics are reproducible.  These tests freeze them —
any algorithmic change that silently alters discovery output trips a
golden value even if cross-algorithm equivalence still holds (e.g. a
bug introduced symmetrically into a shared helper).
"""

import pytest

from repro import DiscoveryConfig, FactDiscoverer, make_algorithm
from repro.datasets import nba_rows, nba_schema, weather_rows, weather_schema

CONFIG = DiscoveryConfig(max_bound_dims=4)


@pytest.fixture(scope="module")
def nba_state():
    """One shared 120-tuple NBA run per algorithm family."""
    schema = nba_schema(4, 4)
    rows = nba_rows(120, d=4, m=4)
    out = {}
    for name in ("bottomup", "topdown", "stopdown"):
        algo = make_algorithm(name, schema, CONFIG)
        fact_counts = [len(fs) for fs in algo.process_stream(rows)]
        out[name] = (algo, fact_counts)
    return out


class TestNBAGolden:
    def test_total_fact_count_consistent(self, nba_state):
        counts = {name: sum(fc) for name, (_a, fc) in nba_state.items()}
        assert len(set(counts.values())) == 1  # all algorithms agree
        total = next(iter(counts.values()))
        # Golden value for seed 2014, n=120, d=4, m=4, d̂=4.
        assert total == 24684

    def test_first_tuple_wins_all_pairs(self, nba_state):
        _algo, fact_counts = nba_state["bottomup"]
        assert fact_counts[0] == 16 * 15  # 2^4 constraints × (2^4 - 1) subspaces

    def test_store_sizes(self, nba_state):
        bottomup, _ = nba_state["bottomup"]
        topdown, _ = nba_state["topdown"]
        assert bottomup.stored_tuple_count() == 22903
        assert topdown.stored_tuple_count() == 6067

    def test_comparison_counts(self, nba_state):
        stopdown, _ = nba_state["stopdown"]
        topdown, _ = nba_state["topdown"]
        assert stopdown.counters.comparisons == 5070
        assert topdown.counters.comparisons == 13209


class TestWeatherGolden:
    def test_fact_stream(self):
        schema = weather_schema(4, 4)
        rows = weather_rows(80, d=4, m=4)
        algo = make_algorithm("sbottomup", schema, CONFIG)
        counts = [len(fs) for fs in algo.process_stream(rows)]
        assert sum(counts) == 15919
        assert counts[0] == 16 * 15


class TestProminenceGolden:
    def test_prominent_fact_totals(self):
        """Fig. 14/15 source numbers at miniature scale."""
        schema = nba_schema(5, 4)
        config = DiscoveryConfig(max_bound_dims=3, max_measure_dims=3, tau=10.0)
        engine = FactDiscoverer(schema, algorithm="stopdown", config=config)
        total = 0
        for row in nba_rows(400, d=5, m=4):
            total += len(engine.observe(row))
        assert total == 135
