"""Tests for the reference skyline operators (oracles)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.constraint import Constraint
from repro.core.dominance import dominates
from repro.core.record import Record
from repro.core.skyline import (
    contextual_skyline,
    is_contextual_skyline_tuple,
    skyline_bnl,
    skyline_presort,
)


def rec(tid, dims, values):
    vals = tuple(float(v) for v in values)
    return Record(tid, tuple(dims), vals, vals)


def table_iv():
    """The paper's running example (Table IV)."""
    return [
        rec(1, ("a1", "b2", "c2"), (10, 15)),
        rec(2, ("a1", "b1", "c1"), (15, 10)),
        rec(3, ("a2", "b1", "c2"), (17, 17)),
        rec(4, ("a2", "b1", "c1"), (20, 20)),
        rec(5, ("a1", "b1", "c1"), (11, 15)),
    ]


random_records = st.lists(
    st.tuples(
        st.sampled_from(["a", "b"]),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=0,
    max_size=25,
).map(
    lambda rows: [rec(i, (d,), vals) for i, (d, *vals) in enumerate(rows)]
)


class TestExample3:
    """Example 3 of the paper, verbatim."""

    def test_full_space_skyline_is_t4(self):
        sky = skyline_bnl(table_iv(), 0b11)
        assert {r.tid for r in sky} == {4}

    def test_contextual_skyline_full_space(self):
        c = Constraint(("a1", "b1", "c1"))
        sky = contextual_skyline(table_iv(), c, 0b11)
        assert {r.tid for r in sky} == {2, 5}

    def test_contextual_skyline_m1_only(self):
        c = Constraint(("a1", "b1", "c1"))
        sky = contextual_skyline(table_iv(), c, 0b01)
        assert {r.tid for r in sky} == {2}


class TestOperators:
    def test_empty_input(self):
        assert skyline_bnl([], 0b1) == []
        assert skyline_presort([], 0b1) == []

    def test_empty_subspace(self):
        assert skyline_bnl(table_iv(), 0) == []

    def test_duplicates_both_survive(self):
        a, b = rec(0, ("x",), (3, 3)), rec(1, ("x",), (3, 3))
        sky = skyline_bnl([a, b], 0b11)
        assert {r.tid for r in sky} == {0, 1}

    @given(random_records, st.integers(min_value=1, max_value=7))
    def test_bnl_equals_presort(self, records, subspace):
        bnl = {r.tid for r in skyline_bnl(records, subspace)}
        pre = {r.tid for r in skyline_presort(records, subspace)}
        assert bnl == pre

    @given(random_records, st.integers(min_value=1, max_value=7))
    def test_skyline_members_are_undominated(self, records, subspace):
        sky = skyline_bnl(records, subspace)
        for s in sky:
            assert not any(
                o.tid != s.tid and dominates(o, s, subspace) for o in records
            )

    @given(random_records, st.integers(min_value=1, max_value=7))
    def test_non_members_are_dominated(self, records, subspace):
        sky_ids = {r.tid for r in skyline_bnl(records, subspace)}
        for r in records:
            if r.tid not in sky_ids:
                assert any(
                    o.tid != r.tid and dominates(o, r, subspace) for o in records
                )


class TestMembership:
    def test_is_contextual_skyline_tuple(self):
        rows = table_iv()
        t5 = rows[-1]
        # t5 is dominated by t4 under ⊤ in full space.
        assert not is_contextual_skyline_tuple(t5, rows, Constraint.top(3), 0b11)
        # ...but in context d1=a1 only t1, t2 compete, neither dominates.
        assert is_contextual_skyline_tuple(
            t5, rows, Constraint(("a1", None, None)), 0b11
        )

    def test_empty_subspace_is_never_skyline(self):
        rows = table_iv()
        assert not is_contextual_skyline_tuple(rows[0], rows, Constraint.top(3), 0)
