"""Incremental sweep index (``repro.storage.sweep_index``).

The index answers per-arrival dominance partitions from sorted measure
orderings + interned-value posting bitsets, valid up to a stable-prefix
watermark, with a dense pass over the un-indexed suffix.  Its one
correctness obligation is *bit-identity*: every fact, score and op
counter must match the dense sweep exactly, on any stream — deletions
interleaved, ``None`` dimension values, windowed eviction, sharded.
These tests fuzz that property and pin the tombstone/compaction
mechanics the index's invalidation story rests on.
"""

import random

import numpy as np
import pytest

from repro import DiscoveryConfig, FactDiscoverer, TableSchema
from repro.algorithms.s_vectorized import SVectorized
from repro.api import EngineSpec, open_engine
from repro.core.record import Record
from repro.datasets.synthetic import synthetic_rows, synthetic_schema
from repro.storage import ColumnarSkylineStore


@pytest.fixture(autouse=True)
def _small_fold_batch(monkeypatch):
    # Default fold batch is 256; short test streams must still cross
    # the watermark for the indexed path to activate at all.
    monkeypatch.setenv("REPRO_SWEEP_FOLD_BATCH", "8")


def fact_key(fact):
    return (
        fact.constraint.values,
        fact.subspace,
        fact.context_size,
        fact.skyline_size,
    )


def run_scored_stream(schema, rows, sweep_index, algorithm="svec",
                      delete_every=0, seed=5):
    """Feed ``rows`` through a scored engine, interleaving deletions of
    random live tuples; returns (per-arrival fact keys, counter snapshot).
    """
    engine = FactDiscoverer(
        schema, algorithm=algorithm, score=True,
        **({"sweep_index": sweep_index} if algorithm == "svec" else {}),
    )
    rng = random.Random(seed)
    out = []
    live = []
    for i, row in enumerate(rows):
        out.append([fact_key(f) for f in engine.facts_for(row)])
        live.append(engine.table[len(engine.table) - 1].tid)
        if delete_every and i % delete_every == delete_every - 1 and len(live) > 2:
            engine.delete(live.pop(rng.randrange(len(live))))
    return out, engine.counters.snapshot()


# ----------------------------------------------------------------------
# Property: indexed ≡ dense, bit for bit
# ----------------------------------------------------------------------
class TestIndexedDenseEquivalence:
    @pytest.mark.parametrize("distribution", ["anticorrelated", "independent"])
    def test_scored_stream_identical(self, distribution):
        schema = synthetic_schema(3, 3)
        rows = synthetic_rows(180, 3, 3, distribution=distribution, seed=11)
        want = run_scored_stream(schema, rows, "off")
        assert run_scored_stream(schema, rows, "on") == want
        assert run_scored_stream(schema, rows, "auto") == want

    def test_deletion_interleaved_identical(self):
        schema = synthetic_schema(4, 4)
        rows = synthetic_rows(160, 4, 4, distribution="anticorrelated", seed=3)
        want = run_scored_stream(schema, rows, "off", delete_every=4)
        assert run_scored_stream(schema, rows, "on", delete_every=4) == want

    def test_matches_stopdown_reference(self):
        # The dense sweep is itself equivalence-tested against stopdown
        # elsewhere; assert the indexed path directly against the scalar
        # reference too, so a correlated dense+indexed bug cannot hide.
        schema = synthetic_schema(3, 2)
        rows = synthetic_rows(120, 3, 2, distribution="anticorrelated", seed=9)
        facts_ref, _ = run_scored_stream(
            schema, rows, None, algorithm="stopdown", delete_every=6
        )
        facts_idx, _ = run_scored_stream(schema, rows, "on", delete_every=6)
        assert facts_idx == facts_ref

    def test_none_dimension_values_identical(self):
        # None dims force the scalar fallback per-arrival; mixed streams
        # exercise fallback and indexed probes against shared state.
        schema = synthetic_schema(3, 3)
        rows = synthetic_rows(150, 3, 3, distribution="independent", seed=2)
        rng = random.Random(4)
        for row in rows:
            if rng.random() < 0.2:
                row[f"d{rng.randrange(3)}"] = None
        want = run_scored_stream(schema, rows, "off", delete_every=7)
        assert run_scored_stream(schema, rows, "on", delete_every=7) == want

    def test_partition_bitmasks_bit_identical(self):
        """The store-level contract: indexed reconstruction of the
        lt/gt/agree partition columns equals the dense sweep exactly,
        probe by probe, under interleaved deletions."""
        schema = synthetic_schema(4, 4)
        rows = synthetic_rows(300, 4, 4, distribution="anticorrelated", seed=7)
        algo = SVectorized(schema, sweep_index="on")
        rng = random.Random(13)
        live = []
        checked = 0
        for i, row in enumerate(rows):
            algo.process(row)
            live.append(i)
            if i % 5 == 2 and len(live) > 3:
                algo.retract(live.pop(rng.randrange(len(live))))
            if i % 9 == 0 and i > 40:
                store = algo.store
                probe = algo.table.make_record(rows[(i * 17) % len(rows)])
                got = store.partition_bitmasks(probe)
                sweep, store._sweep = store._sweep, None
                want = store.partition_bitmasks(probe)
                store._sweep = sweep
                for g, w in zip(got, want):
                    assert np.array_equal(g, w), f"mismatch at arrival {i}"
                checked += 1
        assert checked > 10
        assert algo.store._sweep.active

    def test_windowed_eviction_identical(self):
        schema = synthetic_schema(3, 2)
        rows = synthetic_rows(120, 3, 2, distribution="anticorrelated", seed=21)

        def run(mode):
            spec = EngineSpec(schema, "svec", DiscoveryConfig(),
                              window=30, sweep_index=mode)
            with open_engine(spec) as engine:
                return [
                    [fact_key(f) for f in engine.facts_for(row)]
                    for row in rows
                ]

        assert run("on") == run("off")


# ----------------------------------------------------------------------
# Tombstones, grouped unregister, compaction
# ----------------------------------------------------------------------
def _store_with_rows(n, n_dims=2, n_measures=2, seed=1):
    schema = synthetic_schema(n_dims, n_measures)
    algo = SVectorized(schema, sweep_index="off")
    for row in synthetic_rows(n, n_dims, n_measures,
                              distribution="anticorrelated", seed=seed):
        algo.process(row)
    return algo


class TestTombstonesAndCompaction:
    def test_unregister_tombstones_not_slides(self):
        algo = _store_with_rows(50)
        store = algo.store
        n_before = store.n_rows
        row = store._row_of[10]
        algo.retract(10)
        # The row is neutralised in place: no slide, sentinel columns.
        assert store.n_rows == n_before
        assert store.record_at(row) is None
        assert np.all(np.isnan(store._values[row]))
        assert np.all(store._dims[row] == -1)
        assert 10 not in store._row_of

    def test_unregister_many_single_compaction_check(self):
        algo = _store_with_rows(40)
        store = algo.store
        tids = [5, 7, 11, 13]
        store.unregister_many(tids)
        assert store._dead_count == len(tids)
        for tid in tids:
            assert tid not in store._row_of

    def test_deferred_compaction_context(self):
        algo = _store_with_rows(300)
        store = algo.store
        with store.deferred_compaction():
            for tid in range(200):
                algo.retract(tid)
            # Well past the threshold, yet nothing compacted mid-group.
            assert store._dead_count == 200
        # One grouped pass at exit reclaimed every tombstone.
        assert store._dead_count == 0
        assert store.n_rows == 100

    def test_retract_many_equals_retract_loop(self):
        schema = synthetic_schema(3, 3)
        rows = synthetic_rows(90, 3, 3, distribution="anticorrelated", seed=6)
        a, b = (SVectorized(schema, sweep_index=m) for m in ("on", "off"))
        for algo in (a, b):
            for row in rows:
                algo.process(row)
        doomed = [3, 8, 15, 40, 41, 42, 77]
        removed = a.retract_many(doomed)
        for tid in doomed:
            b.retract(tid)
        assert [r.tid for r in removed] == doomed
        tail = synthetic_rows(20, 3, 3, distribution="anticorrelated", seed=8)
        for row in tail:
            fa = [fact_key(f) for f in a.process(row)]
            fb = [fact_key(f) for f in b.process(row)]
            assert fa == fb
        assert a.counters.snapshot() == b.counters.snapshot()

    def test_compaction_resets_and_rebuilds_sweep(self):
        schema = synthetic_schema(2, 2)
        algo = SVectorized(schema, sweep_index="on")
        rows = synthetic_rows(400, 2, 2, distribution="anticorrelated", seed=4)
        for row in rows:
            algo.process(row)
        store = algo.store
        assert store._sweep is not None and store._sweep.active
        algo.retract_many(list(range(300)))
        # The dead fraction crossed the threshold: rows slid, watermark
        # reset; the index folds again as the stream continues.
        assert store._dead_count == 0
        assert store.n_rows == 100
        for row in synthetic_rows(40, 2, 2,
                                  distribution="anticorrelated", seed=12):
            algo.process(row)
        assert store._sweep.active
        assert store._sweep.watermark <= store.n_rows


# ----------------------------------------------------------------------
# Spec / knob plumbing
# ----------------------------------------------------------------------
class TestSweepIndexKnob:
    def test_spec_round_trip(self):
        schema = TableSchema(("d",), ("m",))
        for mode in ("auto", "on", "off"):
            spec = EngineSpec(schema, "svec", sweep_index=mode)
            doc = spec.to_dict()
            assert doc["sweep_index"] == mode
            assert EngineSpec.from_dict(doc) == spec
        # Absent field defaults to auto (older persisted specs).
        doc = EngineSpec(schema, "svec").to_dict()
        del doc["sweep_index"]
        assert EngineSpec.from_dict(doc).sweep_index == "auto"

    def test_spec_rejects_bad_values(self):
        schema = TableSchema(("d",), ("m",))
        with pytest.raises(ValueError, match="sweep_index"):
            EngineSpec(schema, "svec", sweep_index="maybe")
        with pytest.raises(ValueError, match="svec"):
            EngineSpec(schema, "stopdown", sweep_index="on")

    def test_algorithm_rejects_bad_mode(self):
        schema = synthetic_schema(2, 2)
        with pytest.raises(ValueError):
            SVectorized(schema, sweep_index="fast")

    def test_off_pins_dense(self):
        schema = synthetic_schema(2, 2)
        algo = SVectorized(schema, sweep_index="off")
        for row in synthetic_rows(60, 2, 2,
                                  distribution="anticorrelated", seed=5):
            algo.process(row)
        assert algo.store.sweep_index() is None

    def test_on_activates_index(self):
        schema = synthetic_schema(2, 2)
        algo = SVectorized(schema, sweep_index="on")
        for row in synthetic_rows(60, 2, 2,
                                  distribution="anticorrelated", seed=5):
            algo.process(row)
        sweep = algo.store.sweep_index()
        assert sweep is not None and sweep.active
        assert sweep.watermark > 0

    def test_derived_spec_carries_mode(self):
        schema = synthetic_schema(2, 2)
        engine = FactDiscoverer(schema, algorithm="svec", sweep_index="on")
        assert engine.spec.sweep_index == "on"
