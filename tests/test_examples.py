"""Every example script must run clean (small workloads).

Examples are the first thing a new user executes; breaking one is a
release blocker, so they are exercised as subprocesses here.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name, *args, timeout=120):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "195 pairs" in proc.stdout
        assert "prominence" in proc.stdout

    def test_algorithm_comparison(self):
        proc = run_example("algorithm_comparison.py", "60")
        assert proc.returncode == 0, proc.stderr
        assert "identical fact sets" in proc.stdout

    def test_nba_news_feed(self):
        proc = run_example("nba_news_feed.py", "150", "10")
        assert proc.returncode == 0, proc.stderr
        assert "prominent facts from 150 tuples" in proc.stdout

    def test_weather_extremes(self):
        proc = run_example("weather_extremes.py", "150")
        assert proc.returncode == 0, proc.stderr
        assert "weather alerts raised" in proc.stdout

    def test_stock_alerts(self):
        proc = run_example("stock_alerts.py", "250")
        assert proc.returncode == 0, proc.stderr
        assert "market alerts raised" in proc.stdout

    def test_record_watch(self):
        proc = run_example("record_watch.py", "200", "60")
        assert proc.returncode == 0, proc.stderr
        assert "windowed records spotted" in proc.stdout
