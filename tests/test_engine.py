"""End-to-end tests for the FactDiscoverer engine."""

import pytest

from repro import (
    Constraint,
    DiscoveryConfig,
    FactDiscoverer,
    TableSchema,
    make_algorithm,
)

SCHEMA = TableSchema(("player", "team"), ("points", "assists"))

ROWS = [
    {"player": "A", "team": "T1", "points": 10, "assists": 5},
    {"player": "B", "team": "T1", "points": 8, "assists": 7},
    {"player": "A", "team": "T2", "points": 12, "assists": 3},
    {"player": "C", "team": "T2", "points": 6, "assists": 6},
]


class TestObserve:
    def test_first_tuple_wins_everything(self):
        engine = FactDiscoverer(SCHEMA, algorithm="stopdown")
        facts = engine.observe(ROWS[0])
        # 4 constraints × 3 subspaces: sole tuple is always in skyline.
        assert len(facts) == 12
        assert all(f.prominence == 1.0 for f in facts)

    def test_scoring_matches_definitions(self):
        engine = FactDiscoverer(SCHEMA, algorithm="stopdown")
        for row in ROWS[:-1]:
            engine.observe(row)
        facts = engine.facts_for(ROWS[-1])
        by_pair = {f.pair: f for f in facts}
        team2 = Constraint.from_mapping(SCHEMA, {"team": "T2"})
        assists = SCHEMA.measure_mask(("assists",))
        fact = by_pair[(team2, assists)]
        # Context team=T2 holds 2 tuples; C's 6 assists beat A's 3.
        assert fact.context_size == 2
        assert fact.skyline_size == 1
        assert fact.prominence == 2.0

    def test_observe_many_returns_per_tuple_lists(self):
        engine = FactDiscoverer(SCHEMA, algorithm="bottomup")
        outs = engine.observe_many(ROWS)
        assert len(outs) == 4
        assert len(engine) == 4

    def test_observe_all_deprecated_alias(self):
        """observe_all still works but warns exactly once per call and
        matches observe_many's output."""
        engine = FactDiscoverer(SCHEMA, algorithm="bottomup")
        with pytest.warns(DeprecationWarning, match="observe_many") as rec:
            outs = engine.observe_all(ROWS)
        assert len([w for w in rec if w.category is DeprecationWarning]) == 1
        reference = FactDiscoverer(SCHEMA, algorithm="bottomup")
        expected = reference.observe_many(ROWS)
        assert [[f.pair for f in facts] for facts in outs] == [
            [f.pair for f in facts] for facts in expected
        ]

    def test_tau_filters_to_prominent_only(self):
        engine = FactDiscoverer(
            SCHEMA, algorithm="stopdown", config=DiscoveryConfig(tau=2.0)
        )
        engine.observe(ROWS[0])
        out = engine.observe(ROWS[1])
        # Early tuples can't reach prominence 2 in 2-tuple contexts
        # unless alone in a big skyline; check the policy applies.
        assert all(f.prominence >= 2.0 for f in out)

    def test_top_k(self):
        engine = FactDiscoverer(
            SCHEMA, algorithm="stopdown", config=DiscoveryConfig(top_k=3)
        )
        engine.observe(ROWS[0])
        out = engine.observe(ROWS[1])
        assert len(out) >= 1
        proms = [f.prominence for f in out]
        assert proms == sorted(proms, reverse=True)

    def test_score_false_returns_unscored(self):
        engine = FactDiscoverer(SCHEMA, algorithm="stopdown", score=False)
        facts = engine.facts_for(ROWS[0])
        assert all(f.prominence is None for f in facts)

    def test_accepts_algorithm_instance(self):
        algo = make_algorithm("bottomup", SCHEMA)
        engine = FactDiscoverer(SCHEMA, algorithm=algo)
        assert engine.algorithm is algo

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            FactDiscoverer(SCHEMA, algorithm="quantum")

    def test_score_false_with_tau_rejected(self):
        """tau filtering needs prominence; score=False would silently
        drop every fact — fail loudly at construction instead."""
        with pytest.raises(ValueError, match="score=False"):
            FactDiscoverer(
                SCHEMA, algorithm="stopdown",
                config=DiscoveryConfig(tau=2.0), score=False,
            )

    def test_counters_exposed(self):
        engine = FactDiscoverer(SCHEMA, algorithm="stopdown")
        engine.observe_many(ROWS)
        assert engine.counters.traversed_constraints > 0

    def test_repr(self):
        engine = FactDiscoverer(SCHEMA, algorithm="stopdown")
        assert "stopdown" in repr(engine)


class TestObserveMany:
    """observe_many / facts_for_many must equal a loop of observe."""

    @pytest.mark.parametrize("name", ["stopdown", "svec", "baselinevec"])
    def test_observe_many_matches_observe_loop(self, name):
        batch = FactDiscoverer(SCHEMA, algorithm=name)
        loop = FactDiscoverer(SCHEMA, algorithm=name)
        batched = batch.observe_many(ROWS)
        looped = [loop.observe(row) for row in ROWS]
        assert len(batched) == len(looped) == len(ROWS)
        for got, want in zip(batched, looped):
            assert [(f.pair, f.context_size, f.skyline_size) for f in got] == [
                (f.pair, f.context_size, f.skyline_size) for f in want
            ]

    @pytest.mark.parametrize("name", ["stopdown", "svec"])
    def test_facts_for_many_unscored_matches_loop(self, name):
        batch = FactDiscoverer(SCHEMA, algorithm=name, score=False)
        loop = FactDiscoverer(SCHEMA, algorithm=name, score=False)
        batched = batch.facts_for_many(ROWS)
        looped = [loop.facts_for(row) for row in ROWS]
        assert [fs.pairs for fs in batched] == [fs.pairs for fs in looped]
        assert len(batch) == len(loop) == len(ROWS)

    def test_observe_many_scoring_uses_per_arrival_state(self):
        """Prominence for row i must reflect the relation at arrival i,
        not the end of the batch."""
        engine = FactDiscoverer(SCHEMA, algorithm="svec")
        first = engine.observe_many(ROWS)[0]
        assert all(f.prominence == 1.0 for f in first)

    def test_observe_many_empty_batch(self):
        engine = FactDiscoverer(SCHEMA, algorithm="svec")
        assert engine.observe_many([]) == []

    def test_process_many_matches_process_stream(self):
        from repro import make_algorithm

        batch = make_algorithm("svec", SCHEMA)
        loop = make_algorithm("svec", SCHEMA)
        got = [fs.pairs for fs in batch.process_many(ROWS)]
        want = [fs.pairs for fs in loop.process_stream(ROWS)]
        assert got == want


class TestScoringConsistencyAcrossAlgorithms:
    """Prominence must not depend on which algorithm produced S_t."""

    @pytest.mark.parametrize(
        "name", ["bruteforce", "baselineseq", "ccsc", "bottomup", "topdown",
                 "sbottomup", "stopdown", "svec"]
    )
    def test_scores_match_bottomup_reference(self, name, gamelog_schema, gamelog_rows):
        ref_engine = FactDiscoverer(gamelog_schema, algorithm="bottomup")
        for row in gamelog_rows[:-1]:
            ref_engine.observe(row)
        ref = {
            f.pair: (f.context_size, f.skyline_size)
            for f in ref_engine.facts_for(gamelog_rows[-1])
        }

        engine = FactDiscoverer(gamelog_schema, algorithm=name)
        for row in gamelog_rows[:-1]:
            engine.observe(row)
        got = {
            f.pair: (f.context_size, f.skyline_size)
            for f in engine.facts_for(gamelog_rows[-1])
        }
        assert got == ref
