"""Tests for the columnar store subsystem and the ``svec`` engine.

Generic store semantics are covered by the parametrised fixture in
``test_stores.py``; here we test what is *specific* to the columnar
pieces — the column arrays, interning, ``grow_2d``, the anchor-mask
index — and the strong ``svec`` ≡ ``stopdown`` equivalence (facts,
stores, *and* counters) on randomized streams.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DiscoveryConfig, TableSchema, make_algorithm
from repro.core.constraint import Constraint
from repro.core.record import Record
from repro.storage import ColumnarSkylineStore, MemorySkylineStore, grow_2d

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))

row_strategy = st.fixed_dictionaries(
    {
        "d0": st.sampled_from(["a", "b", "c"]),
        "d1": st.sampled_from(["x", "y"]),
        "m0": st.integers(min_value=0, max_value=4),
        "m1": st.integers(min_value=0, max_value=4),
    }
)


def rec(tid, dims=("a", "x"), raw=(1.0, 2.0)):
    return Record(tid, tuple(dims), tuple(map(float, raw)), tuple(map(float, raw)))


class TestGrow2d:
    def test_noop_when_capacity_suffices(self):
        a = np.zeros((4, 2))
        assert grow_2d(a, 3) is a

    def test_doubles_and_preserves_prefix(self):
        a = np.arange(8, dtype=np.float64).reshape(4, 2)
        b = grow_2d(a, 4)
        assert b.shape == (8, 2)
        assert (b[:4] == a).all()

    def test_min_rows_reaches_requested_capacity(self):
        a = np.zeros((2, 3), dtype=np.int32)
        b = grow_2d(a, 1, min_rows=70)
        assert b.shape[0] >= 70
        assert b.dtype == np.int32

    def test_grows_from_zero_capacity(self):
        a = np.empty((0, 5))
        assert grow_2d(a, 0).shape[0] >= 1


class TestColumnarSubstrate:
    def test_register_is_idempotent_per_tid(self):
        store = ColumnarSkylineStore()
        r = rec(0)
        assert store.register(r) == store.register(r) == 0
        assert store.n_rows == 1

    def test_columns_reflect_registered_records(self):
        store = ColumnarSkylineStore()
        store.register(rec(0, dims=("a", "x"), raw=(1.0, 2.0)))
        store.register(rec(1, dims=("b", "x"), raw=(3.0, 4.0)))
        values = store.values_matrix()
        dims = store.dims_matrix()
        assert values.shape == (2, 2)
        assert values[1].tolist() == [3.0, 4.0]
        # Interning: equal dim values share ids, distinct ones differ.
        assert dims[0, 1] == dims[1, 1]
        assert dims[0, 0] != dims[1, 0]

    def test_probe_interning_matches_stored_rows(self):
        store = ColumnarSkylineStore()
        store.register(rec(0, dims=("a", "x")))
        probe = store.intern_dims(("a", "z"))
        assert probe[0] == store.dims_matrix()[0, 0]
        assert probe[1] != store.dims_matrix()[0, 1]

    def test_growth_preserves_history(self):
        store = ColumnarSkylineStore(initial_capacity=4)
        for tid in range(40):
            store.register(rec(tid, raw=(tid, -tid)))
        assert store.n_rows == 40
        assert store.values_matrix()[17, 0] == 17.0

    def test_reserve_grows_once(self):
        store = ColumnarSkylineStore(
            n_dimensions=2, n_measures=2, initial_capacity=4
        )
        store.reserve(100)
        cap = store._values.shape[0]
        assert cap >= 100
        for tid in range(80):
            store.register(rec(tid))
        assert store._values.shape[0] == cap

    def test_rows_returns_membership_in_insertion_order(self):
        store = ColumnarSkylineStore()
        c = Constraint(("a", None))
        store.insert(c, 0b11, rec(3))
        store.insert(c, 0b11, rec(1))
        assert store.rows(c, 0b11).tolist() == [0, 1]
        assert [r.tid for r in store.get(c, 0b11)] == [3, 1]

    def test_record_at_roundtrip(self):
        store = ColumnarSkylineStore()
        r = rec(7)
        row = store.register(r)
        assert store.record_at(row) is r

    def test_anchor_masks_track_insert_delete(self):
        store = ColumnarSkylineStore()
        r = rec(0)
        c1 = Constraint(("a", None))
        c2 = Constraint(("a", "x"))
        store.insert(c1, 0b01, r)
        store.insert(c2, 0b01, r)
        assert store.anchor_masks(0, 0b01) == {0b01, 0b11}
        store.delete(c1, 0b01, r)
        assert store.anchor_masks(0, 0b01) == {0b11}
        store.delete(c2, 0b01, r)
        assert store.anchor_masks(0, 0b01) == frozenset()

    def test_memory_store_has_no_anchor_index(self):
        assert MemorySkylineStore().anchor_masks(0, 0b01) is None

    def test_clear_resets_columns_and_index(self):
        store = ColumnarSkylineStore()
        store.insert(Constraint(("a", None)), 0b01, rec(0))
        store.clear()
        assert store.n_rows == 0
        assert store.stored_tuple_count() == 0
        assert store.anchor_masks(0, 0b01) == frozenset()

    def test_approx_bytes_counts_columns(self):
        store = ColumnarSkylineStore()
        assert store.approx_bytes() == 0
        store.insert(Constraint(("a", None)), 0b01, rec(0))
        assert store.approx_bytes() > 0


class TestSVecEquivalence:
    """svec ≡ stopdown: facts, store contents, and counters."""

    def _snapshot(self, algo):
        return {
            key: {r.tid for r in recs} for key, recs in algo.store.iter_pairs()
        }

    @settings(max_examples=25, deadline=None)
    @given(st.lists(row_strategy, min_size=1, max_size=16))
    def test_matches_stopdown_exactly(self, rows):
        ref = make_algorithm("stopdown", SCHEMA)
        vec = make_algorithm("svec", SCHEMA)
        expected = [fs.pairs for fs in ref.process_stream(rows)]
        got = [fs.pairs for fs in vec.process_stream(rows)]
        assert got == expected
        assert self._snapshot(vec) == self._snapshot(ref)
        assert vec.counters.snapshot() == ref.counters.snapshot()

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(row_strategy, min_size=1, max_size=12),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=1, max_value=2),
    )
    def test_matches_stopdown_under_caps(self, rows, dhat, mhat):
        cfg = DiscoveryConfig(max_bound_dims=dhat, max_measure_dims=mhat)
        ref = make_algorithm("stopdown", SCHEMA, cfg)
        vec = make_algorithm("svec", SCHEMA, cfg)
        expected = [fs.pairs for fs in ref.process_stream(rows)]
        got = [fs.pairs for fs in vec.process_stream(rows)]
        assert got == expected
        assert self._snapshot(vec) == self._snapshot(ref)

    def test_matches_on_paper_example(self, gamelog_schema, gamelog_rows):
        ref = make_algorithm("stopdown", gamelog_schema)
        vec = make_algorithm("svec", gamelog_schema)
        expected = [fs.pairs for fs in ref.process_stream(gamelog_rows)]
        got = [fs.pairs for fs in vec.process_stream(gamelog_rows)]
        assert got == expected
        assert self._snapshot(vec) == self._snapshot(ref)
        assert vec.counters.snapshot() == ref.counters.snapshot()

    @settings(max_examples=10, deadline=None)
    @given(st.lists(row_strategy, min_size=2, max_size=12))
    def test_retraction_matches_stopdown(self, rows):
        ref = make_algorithm("stopdown", SCHEMA)
        vec = make_algorithm("svec", SCHEMA)
        ref.process_stream(rows)
        vec.process_stream(rows)
        tid = len(rows) // 2
        ref.retract(tid)
        vec.retract(tid)
        assert self._snapshot(vec) == self._snapshot(ref)
        probe = rows[0]
        assert vec.process(probe).pairs == ref.process(probe).pairs


class TestNoneDimensionValues:
    """A dimension *value* equal to the unbound marker (None) must not
    corrupt the bound-mask bookkeeping of the fast constraint paths."""

    def test_constraint_for_record_rescans_on_none_dims(self):
        from repro.core.constraint import constraint_for_record

        r = rec(0, dims=(None, "x"))
        c = constraint_for_record(r, 0b01)
        # Position 0 carries None: it cannot be bound, so the mask must
        # reflect the values (old Constraint(...) semantics).
        assert c.bound_mask == 0
        assert c == Constraint((None, None))

    def test_discovery_with_none_dim_matches_bruteforce(self):
        rows = [
            {"d0": None, "d1": "x", "m0": 3, "m1": 1},
            {"d0": "a", "d1": "x", "m0": 2, "m1": 2},
            {"d0": None, "d1": "y", "m0": 1, "m1": 3},
            {"d0": None, "d1": "x", "m0": 3, "m1": 3},
        ]
        ref = make_algorithm("bruteforce", SCHEMA)
        want = [fs.pairs for fs in ref.process_stream(rows)]
        for name in ("stopdown", "svec", "baselinevec"):
            algo = make_algorithm(name, SCHEMA)
            got = [fs.pairs for fs in algo.process_stream(rows)]
            assert got == want, name


class TestSVecInternals:
    def test_requires_columnar_store(self):
        from repro.algorithms.s_vectorized import SVectorized

        with pytest.raises(TypeError, match="ColumnarSkylineStore"):
            SVectorized(SCHEMA, store=MemorySkylineStore())

    def test_registered_in_registry(self):
        assert make_algorithm("svec", SCHEMA).name == "svec"

    def test_every_arrival_enters_columns(self):
        vec = make_algorithm("svec", SCHEMA)
        rows = [
            {"d0": "a", "d1": "x", "m0": i % 3, "m1": (i * 7) % 5}
            for i in range(20)
        ]
        vec.process_stream(rows)
        assert vec.store.n_rows == 20
        assert len(vec.table) == 20

    def test_reset_clears_columns(self):
        vec = make_algorithm("svec", SCHEMA)
        vec.process({"d0": "a", "d1": "x", "m0": 1, "m1": 1})
        vec.reset()
        assert vec.store.n_rows == 0
        assert len(vec.table) == 0
        facts = vec.process({"d0": "a", "d1": "x", "m0": 1, "m1": 1})
        assert len(facts) == 4 * 3

    def test_growth_preserves_discovery(self):
        vec = make_algorithm("svec", SCHEMA)
        vec.store._initial_capacity = 8  # force several growths
        vec.store.clear()
        rows = [
            {"d0": "a", "d1": "x", "m0": i % 5, "m1": (i * 7) % 5}
            for i in range(60)
        ]
        ref = make_algorithm("stopdown", SCHEMA)
        assert [fs.pairs for fs in vec.process_stream(rows)] == [
            fs.pairs for fs in ref.process_stream(rows)
        ]


class TestAnchorBitsets:
    """The per-row anchor bitset columns mirror the set-based reverse
    index exactly, through inserts, deletes, grouped inserts, netted
    re-anchoring, and retraction row shifts."""

    @staticmethod
    def _assert_bits_match_anchors(store):
        n = store.n_rows
        subspaces = {sub for (_, sub) in store._anchors}
        for subspace in subspaces:
            bits = store.anchor_bits(subspace, n)
            assert bits is not None
            for row in range(n):
                record = store.record_at(row)
                expected = 0
                if record is not None:  # tombstones are never anchored
                    for mask in store.anchor_masks(record.tid, subspace):
                        expected |= 1 << mask
                assert int(bits[row]) == expected, (subspace, row)

    @settings(max_examples=15, deadline=None)
    @given(
        rows=st.lists(
            st.fixed_dictionaries(
                {
                    "d0": st.sampled_from(["a", "b", None]),
                    "d1": st.sampled_from(["x", "y"]),
                    "m0": st.integers(min_value=0, max_value=3),
                    "m1": st.integers(min_value=0, max_value=3),
                }
            ),
            min_size=1,
            max_size=16,
        ),
        n_deletes=st.integers(min_value=0, max_value=3),
    )
    def test_bits_track_anchor_sets(self, rows, n_deletes):
        vec = make_algorithm("svec", SCHEMA)
        vec.process_many(rows)
        self._assert_bits_match_anchors(vec.store)
        for tid in range(min(n_deletes, len(rows))):
            vec.retract(tid)
        self._assert_bits_match_anchors(vec.store)

    def test_insert_new_many_equals_insert_sequence(self):
        record = rec(0)
        pairs = [
            (Constraint(("a", None)), 0b11),
            (Constraint((None, "x")), 0b11),
            (Constraint(("a", None)), 0b01),
        ]
        grouped = ColumnarSkylineStore()
        grouped.insert_new_many(record, pairs)
        sequential = ColumnarSkylineStore()
        for constraint, subspace in pairs:
            sequential.insert(constraint, subspace, record)
        assert {
            key: {r.tid for r in records}
            for key, records in grouped.iter_pairs()
        } == {
            key: {r.tid for r in records}
            for key, records in sequential.iter_pairs()
        }
        assert grouped.stored_tuple_count() == sequential.stored_tuple_count()
        for subspace in (0b11, 0b01):
            assert grouped.anchor_masks(0, subspace) == sequential.anchor_masks(
                0, subspace
            )
            gbits = grouped.anchor_bits(subspace, 1)
            sbits = sequential.anchor_bits(subspace, 1)
            assert int(gbits[0]) == int(sbits[0])

    def test_reanchor_demoted_equals_delete_plus_inserts(self):
        top = Constraint((None, None))
        children = [Constraint(("a", None)), Constraint((None, "x"))]
        record = rec(7)

        def build():
            store = ColumnarSkylineStore()
            store.insert(top, 0b11, record)
            store.scoring_index()  # activate flip maintenance
            return store

        netted = build()
        row = netted.row_of(7)
        netted.reanchor_demoted(0b11, record, row, top, children)
        sequential = build()
        sequential.delete(top, 0b11, record)
        for child in children:
            sequential.insert(child, 0b11, record)
        assert {
            key: {r.tid for r in records}
            for key, records in netted.iter_pairs()
        } == {
            key: {r.tid for r in records}
            for key, records in sequential.iter_pairs()
        }
        assert netted.anchor_masks(7, 0b11) == sequential.anchor_masks(7, 0b11)
        assert netted._score_index == sequential._score_index
        assert netted.stored_tuple_count() == sequential.stored_tuple_count()
