"""Shared fixtures: the paper's running examples and small workloads."""

from __future__ import annotations

import pytest

from repro import TableSchema

#: All registry algorithm names that run fully in memory.
MEMORY_ALGORITHMS = [
    "bruteforce",
    "baselineseq",
    "baselineidx",
    "baselinevec",
    "ccsc",
    "bottomup",
    "topdown",
    "sbottomup",
    "stopdown",
    "svec",
]

#: The incremental algorithms (maintain µ stores).
STORE_ALGORITHMS = ["bottomup", "topdown", "sbottomup", "stopdown", "svec"]


@pytest.fixture
def running_example_schema() -> TableSchema:
    """Schema of Table IV: D={d1,d2,d3}, M={m1,m2}."""
    return TableSchema(("d1", "d2", "d3"), ("m1", "m2"))


@pytest.fixture
def running_example_rows():
    """Tuples t1..t5 of Table IV, in arrival order."""
    return [
        {"d1": "a1", "d2": "b2", "d3": "c2", "m1": 10, "m2": 15},
        {"d1": "a1", "d2": "b1", "d3": "c1", "m1": 15, "m2": 10},
        {"d1": "a2", "d2": "b1", "d3": "c2", "m1": 17, "m2": 17},
        {"d1": "a2", "d2": "b1", "d3": "c1", "m1": 20, "m2": 20},
        {"d1": "a1", "d2": "b1", "d3": "c1", "m1": 11, "m2": 15},
    ]


@pytest.fixture
def gamelog_schema() -> TableSchema:
    """Schema of Table I (Example 1): 5 dimensions, 3 measures."""
    return TableSchema(
        ("player", "month", "season", "team", "opp_team"),
        ("points", "assists", "rebounds"),
    )


@pytest.fixture
def gamelog_rows():
    """Tuples t1..t7 of Table I, in arrival order."""
    return [
        dict(player="Bogues", month="Feb", season="1991-92", team="Hornets",
             opp_team="Hawks", points=4, assists=12, rebounds=5),
        dict(player="Seikaly", month="Feb", season="1991-92", team="Heat",
             opp_team="Hawks", points=24, assists=5, rebounds=15),
        dict(player="Sherman", month="Dec", season="1993-94", team="Celtics",
             opp_team="Nets", points=13, assists=13, rebounds=5),
        dict(player="Wesley", month="Feb", season="1994-95", team="Celtics",
             opp_team="Nets", points=2, assists=5, rebounds=2),
        dict(player="Wesley", month="Feb", season="1994-95", team="Celtics",
             opp_team="Timberwolves", points=3, assists=5, rebounds=3),
        dict(player="Strickland", month="Jan", season="1995-96", team="Blazers",
             opp_team="Celtics", points=27, assists=18, rebounds=8),
        dict(player="Wesley", month="Feb", season="1995-96", team="Celtics",
             opp_team="Nets", points=12, assists=13, rebounds=5),
    ]
