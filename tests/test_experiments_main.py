"""Tests for the ``python -m repro.experiments`` entry point."""

import pytest

from repro.experiments.__main__ import main


class TestMain:
    def test_single_figure_tiny_scale(self, capsys):
        rc = main(["fig7a", "--scale", "0.15"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig.7a" in out
        assert "bottomup" in out
        assert "took" in out

    def test_tuple_returning_figure(self, capsys):
        rc = main(["fig15", "--scale", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig.15a" in out and "Fig.15b" in out

    def test_unknown_figure(self, capsys):
        rc = main(["fig_nope"])
        assert rc == 2
        assert "unknown figure" in capsys.readouterr().out


class TestCliFigures:
    def test_cli_figures_runs_one(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["figures", "fig7a", "--scale", "0.15"])
        assert rc == 0
        assert "Fig.7a" in capsys.readouterr().out
