"""Tests for the µ stores: memory, file-backed, and the binary codec."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TableSchema
from repro.core.constraint import Constraint
from repro.core.record import Record
from repro.metrics.counters import OpCounters
from repro.storage import (
    ColumnarSkylineStore,
    DimensionInterner,
    FileSkylineStore,
    MemorySkylineStore,
    RecordCodec,
)

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))


def rec(tid, dims=("a", "b"), raw=(1.0, 2.0)):
    signs = SCHEMA.measure_signs()
    values = tuple(s * v for s, v in zip(signs, raw))
    return Record(tid, tuple(dims), values, tuple(raw))


C1 = Constraint(("a", None))
C2 = Constraint((None, "b"))


@pytest.fixture(params=["memory", "file", "columnar"])
def store(request, tmp_path):
    if request.param == "memory":
        yield MemorySkylineStore()
    elif request.param == "columnar":
        yield ColumnarSkylineStore()
    else:
        s = FileSkylineStore(SCHEMA, directory=str(tmp_path / "mu"))
        yield s
        s.close()


class TestStoreSemantics:
    def test_get_empty(self, store):
        assert list(store.get(C1, 0b11)) == []
        assert not store.contains(C1, 0b11, rec(0))

    def test_insert_then_get(self, store):
        store.insert(C1, 0b11, rec(0))
        assert [r.tid for r in store.get(C1, 0b11)] == [0]
        assert store.contains(C1, 0b11, rec(0))

    def test_insert_is_idempotent(self, store):
        store.insert(C1, 0b11, rec(0))
        store.insert(C1, 0b11, rec(0))
        assert store.stored_tuple_count() == 1

    def test_pairs_are_independent(self, store):
        store.insert(C1, 0b01, rec(0))
        store.insert(C1, 0b10, rec(1))
        store.insert(C2, 0b01, rec(2))
        assert {r.tid for r in store.get(C1, 0b01)} == {0}
        assert {r.tid for r in store.get(C1, 0b10)} == {1}
        assert {r.tid for r in store.get(C2, 0b01)} == {2}

    def test_delete(self, store):
        store.insert(C1, 0b11, rec(0))
        store.insert(C1, 0b11, rec(1))
        store.delete(C1, 0b11, rec(0))
        assert [r.tid for r in store.get(C1, 0b11)] == [1]
        assert store.stored_tuple_count() == 1

    def test_delete_absent_is_noop(self, store):
        store.delete(C1, 0b11, rec(9))
        assert store.stored_tuple_count() == 0

    def test_iter_pairs(self, store):
        store.insert(C1, 0b11, rec(0))
        store.insert(C2, 0b01, rec(1))
        snapshot = {key: {r.tid for r in recs} for key, recs in store.iter_pairs()}
        assert snapshot == {(C1, 0b11): {0}, (C2, 0b01): {1}}

    def test_clear(self, store):
        store.insert(C1, 0b11, rec(0))
        store.clear()
        assert store.stored_tuple_count() == 0
        assert list(store.get(C1, 0b11)) == []

    def test_replace(self, store):
        a, b, c = rec(0), rec(1), rec(2)
        store.insert(C1, 0b11, a)
        store.insert(C1, 0b11, b)
        store.replace(C1, 0b11, remove=[a], add=[c])
        assert {r.tid for r in store.get(C1, 0b11)} == {1, 2}


class TestFileStoreSpecifics:
    def test_files_created_per_nonempty_pair(self, tmp_path):
        s = FileSkylineStore(SCHEMA, directory=str(tmp_path))
        s.insert(C1, 0b11, rec(0))
        s.insert(C2, 0b01, rec(1))
        s.flush()
        files = [f for f in os.listdir(tmp_path) if f.endswith(".bin")]
        assert len(files) == 2

    def test_file_removed_when_pair_empties(self, tmp_path):
        s = FileSkylineStore(SCHEMA, directory=str(tmp_path))
        s.insert(C1, 0b11, rec(0))
        s.flush()
        s.delete(C1, 0b11, rec(0))
        s.flush()
        assert [f for f in os.listdir(tmp_path) if f.endswith(".bin")] == []

    def test_counters_track_io(self, tmp_path):
        counters = OpCounters()
        s = FileSkylineStore(SCHEMA, directory=str(tmp_path), counters=counters)
        s.insert(C1, 0b11, rec(0))
        s.flush()
        assert counters.file_writes == 1
        s.insert(C2, 0b11, rec(1))  # opening new pair flushes... nothing to read
        _ = s.get(C1, 0b11)  # reopening C1 reads its file
        assert counters.file_reads == 1

    def test_empty_pair_reads_no_file(self, tmp_path):
        counters = OpCounters()
        s = FileSkylineStore(SCHEMA, directory=str(tmp_path), counters=counters)
        assert s.get(C1, 0b11) == []
        assert counters.file_reads == 0

    def test_roundtrip_preserves_values_and_preferences(self, tmp_path):
        from repro import MIN

        schema = TableSchema(("d",), ("pts", "fouls"), {"fouls": MIN})
        s = FileSkylineStore(schema, directory=str(tmp_path))
        signs = schema.measure_signs()
        raw = (7.0, 3.0)
        values = tuple(sg * v for sg, v in zip(signs, raw))
        s.insert(Constraint(("a",)), 0b11, Record(5, ("a",), values, raw))
        s.flush()
        (back,) = s.get(Constraint(("a",)), 0b11)
        assert back.tid == 5
        assert back.raw == raw
        assert back.values == (7.0, -3.0)

    def test_approx_bytes_counts_disk(self, tmp_path):
        s = FileSkylineStore(SCHEMA, directory=str(tmp_path))
        assert s.approx_bytes() == 0
        s.insert(C1, 0b11, rec(0))
        assert s.approx_bytes() > 0


class TestCodec:
    def test_roundtrip(self):
        codec = RecordCodec(SCHEMA, DimensionInterner())
        records = [rec(0), rec(1, dims=("c", "d"), raw=(3.5, -1.25))]
        back = codec.decode(codec.encode(records))
        assert [r.tid for r in back] == [0, 1]
        assert back[1].dims == ("c", "d")
        assert back[1].raw == (3.5, -1.25)

    def test_empty_roundtrip(self):
        codec = RecordCodec(SCHEMA, DimensionInterner())
        assert codec.decode(codec.encode([])) == []

    def test_truncated_buffer_raises(self):
        codec = RecordCodec(SCHEMA, DimensionInterner())
        with pytest.raises(ValueError, match="truncated"):
            codec.decode(b"\x01")

    def test_corrupt_length_raises(self):
        codec = RecordCodec(SCHEMA, DimensionInterner())
        buf = codec.encode([rec(0)])
        with pytest.raises(ValueError, match="corrupt"):
            codec.decode(buf + b"\x00")

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),
                st.sampled_from(["a", "b", "c"]),
                st.sampled_from(["x", "y"]),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, rows):
        codec = RecordCodec(SCHEMA, DimensionInterner())
        records = [
            rec(tid, dims=(a, b), raw=(float(x), float(y)))
            for tid, a, b, x, y in rows
        ]
        back = codec.decode(codec.encode(records))
        assert [(r.tid, r.dims, r.raw) for r in back] == [
            (r.tid, r.dims, r.raw) for r in records
        ]

    def test_interner_is_stable(self):
        interner = DimensionInterner()
        a1 = interner.intern("a")
        b = interner.intern("b")
        a2 = interner.intern("a")
        assert a1 == a2 != b
        assert interner.lookup(a1) == "a"
        assert len(interner) == 2
