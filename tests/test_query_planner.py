"""Property suite for the PR-8 read path.

Four layers, one invariant: every acceleration — columnar kernels,
cost-ordered planning with τ/top-k early termination, sharded
push-down, the versioned result cache — must be *property-identical*
to exact scalar recomputation.  The suite fuzzes each layer against the
naive oracle on deletion-interleaved and ``None``-dimension streams,
covers beyond-``d̂`` constraints (where store reconstruction is
invalid and the kernels must take over), and drives the push-down ops
through injected worker crashes and the TCP ``query`` op.
"""

import asyncio
import json
import random

import pytest

from repro import Constraint, DiscoveryConfig, FactDiscoverer, TableSchema
from repro.api import EngineSpec, ShardingSpec, open_engine
from repro.core.constraint import UNBOUND
from repro.core.skyline import contextual_skyline, skyline_bnl
from repro.query import ContextualQueryEngine, QueryPlan, QueryResultCache
from repro.query.kernels import ColumnarQueryKernels
from repro.service import faults
from repro.service.server import StreamServer
from repro.service.sharding import ShardedDiscoverer

SCHEMA = TableSchema(("d0", "d1", "d2"), ("m0", "m1"))
#: d̂ = 2 on a 3-dimension schema: fully-bound constraints are
#: beyond-cap, so store/scoring-index answers are invalid for them and
#: the kernels/scalar path must take over.
CONFIG = DiscoveryConfig(max_bound_dims=2, max_measure_dims=2)


def make_rows(n, seed=7, none_frac=0.0):
    rng = random.Random(seed)
    rows = []
    for _ in range(n):
        row = {
            "d0": f"a{rng.randint(0, 2)}",
            "d1": f"b{rng.randint(0, 2)}",
            "d2": f"c{rng.randint(0, 1)}",
            "m0": rng.randint(0, 9),
            "m1": 9 - rng.randint(0, 9) + rng.randint(0, 3),
        }
        if none_frac and rng.random() < none_frac:
            row[rng.choice(("d0", "d1", "d2"))] = None
        rows.append(row)
    return rows


def sample_pairs(rng, n_pairs=24):
    """Random (constraint, subspace) pairs spanning bound counts 0..3
    (3 = beyond the d̂=2 cap) and subspaces 0..3."""
    pairs = []
    for _ in range(n_pairs):
        values = tuple(
            rng.choice((UNBOUND, f"{p}{rng.randint(0, 2)}"))
            for p in ("a", "b", "c")
        )
        pairs.append((Constraint(values), rng.randint(0, 3)))
    # Pin the corner cases in every run.
    pairs.append((Constraint((UNBOUND,) * 3), 3))          # top, full space
    pairs.append((Constraint(("a1", "b1", "c1")), 3))      # beyond-cap
    pairs.append((Constraint(("a0", UNBOUND, UNBOUND)), 0))  # empty subspace
    return pairs


def ingest_with_deletions(engine, rows, delete_every=0, seed=11):
    rng = random.Random(seed)
    live = []
    for i, row in enumerate(rows):
        engine.observe(row)
        live.append(engine.table[len(engine.table) - 1].tid)
        if delete_every and i % delete_every == delete_every - 1:
            engine.delete(live.pop(rng.randrange(len(live))))


# ----------------------------------------------------------------------
# Columnar kernels vs the scalar oracle
# ----------------------------------------------------------------------
class TestKernelScalarParity:
    @pytest.mark.parametrize("none_frac,delete_every", [
        (0.0, 0), (0.0, 5), (0.25, 0), (0.25, 4),
    ])
    def test_full_read_surface_parity(self, none_frac, delete_every):
        engine = FactDiscoverer(SCHEMA, algorithm="svec", config=CONFIG)
        ingest_with_deletions(
            engine, make_rows(60, none_frac=none_frac), delete_every
        )
        fast = ContextualQueryEngine(engine.algorithm, use_kernels=True)
        slow = ContextualQueryEngine(engine.algorithm, use_kernels=False)
        assert fast._kernels() is not None  # svec must engage the kernels
        rng = random.Random(17)
        for constraint, subspace in sample_pairs(rng):
            key = (constraint, subspace)
            got = sorted(r.tid for r in fast.skyline(constraint, subspace))
            want = sorted(r.tid for r in slow.skyline(constraint, subspace))
            oracle = sorted(
                r.tid
                for r in contextual_skyline(engine.table, constraint, subspace)
            )
            assert got == want == oracle, key
            for k in (1, 2, 3):
                got_band = sorted(
                    r.tid for r in fast.skyband(constraint, subspace, k)
                )
                want_band = sorted(
                    r.tid for r in slow.skyband(constraint, subspace, k)
                )
                assert got_band == want_band, (key, k)
            assert fast.context_size(constraint) == slow.context_size(
                constraint
            ), key
            assert fast.prominence(constraint, subspace) == slow.prominence(
                constraint, subspace
            ), key
            for record in list(engine.table)[:10]:
                assert fast.is_skyline_tuple(
                    record.tid, constraint, subspace
                ) == slow.is_skyline_tuple(record.tid, constraint, subspace), (
                    key,
                    record.tid,
                )

    def test_kernels_refuse_non_columnar_algorithms(self):
        engine = FactDiscoverer(SCHEMA, algorithm="stopdown", config=CONFIG)
        engine.observe_many(make_rows(10))
        assert ColumnarQueryKernels.for_algorithm(engine.algorithm) is None
        # …and the query engine still answers exactly via the scalar path.
        queries = ContextualQueryEngine(engine.algorithm)
        constraint = Constraint(("a1", UNBOUND, UNBOUND))
        got = sorted(r.tid for r in queries.skyline(constraint, 3))
        want = sorted(
            r.tid for r in contextual_skyline(engine.table, constraint, 3)
        )
        assert got == want

    def test_beyond_cap_store_paths_are_bypassed(self):
        """A fully-bound constraint (bound count 3 > d̂=2) may have
        skyline tuples anchored in no maintained store; the query engine
        must recompute rather than trust reconstruction."""
        engine = FactDiscoverer(SCHEMA, algorithm="stopdown", config=CONFIG)
        engine.observe_many(make_rows(60, seed=3))
        queries = engine.query()
        for values in {
            tuple(r.dims) for r in engine.table if UNBOUND not in r.dims
        }:
            constraint = Constraint(values)
            assert not queries._within_bound_cap(constraint)
            for subspace in (1, 2, 3):
                got = sorted(r.tid for r in queries.skyline(constraint, subspace))
                want = sorted(
                    r.tid
                    for r in contextual_skyline(
                        engine.table, constraint, subspace
                    )
                )
                assert got == want, (values, subspace)


# ----------------------------------------------------------------------
# Planner: identical reported set, fewer evaluations
# ----------------------------------------------------------------------
BOUND_GRID = [
    {},
    {"top_k": 1},
    {"top_k": 3},
    {"tau": 2.0},
    {"tau": 1.0, "top_k": 2},
]


def naive_batch(engine, pairs, top_k=None, tau=None):
    """Input-order oracle computed from raw table scans only."""
    table = list(engine.table)
    proms = []
    for constraint, subspace in pairs:
        context = [r for r in table if constraint.satisfied_by(r)]
        sky = skyline_bnl(context, subspace)
        proms.append(None if not sky else len(context) / len(sky))
    keep = [
        i
        for i, p in enumerate(proms)
        if p is not None and (tau is None or p >= tau)
    ]
    if top_k is not None:
        ranked = sorted((proms[i] for i in keep), reverse=True)
        if len(ranked) >= top_k:
            theta = ranked[top_k - 1]
            keep = [i for i in keep if proms[i] >= theta]
    if tau is None and top_k is None:
        keep = list(range(len(pairs)))
    return [(i, proms[i]) for i in keep]


class TestPlannerIdentity:
    def _engine(self, seed=7):
        engine = FactDiscoverer(SCHEMA, algorithm="svec", config=CONFIG)
        ingest_with_deletions(engine, make_rows(80, seed=seed), delete_every=7)
        return engine

    @pytest.mark.parametrize("bounds", BOUND_GRID)
    def test_planned_equals_fixed_order_equals_oracle(self, bounds):
        engine = self._engine()
        pairs = sample_pairs(random.Random(23), n_pairs=20)
        queries = engine.query()
        planned = queries.batch(pairs, **bounds)
        fixed = queries.batch(pairs, _fixed_order=True, **bounds)
        want = naive_batch(engine, pairs, **bounds)
        want_keys = [(*pairs[i], p) for i, p in want]
        for got in (planned, fixed):
            got_keys = [(r.constraint, r.subspace, r.prominence) for r in got]
            assert got_keys == want_keys, bounds
        for r_planned, r_fixed in zip(planned, fixed):
            assert sorted(x.tid for x in r_planned.skyline) == sorted(
                x.tid for x in r_fixed.skyline
            )
            assert r_planned.context_size == r_fixed.context_size
            assert r_planned.skyline_size == r_fixed.skyline_size

    def test_early_termination_skips_without_changing_results(self):
        """With a top-1 bound over a workload of one huge-context pair
        and many tiny ones, the planner must prove the tiny pairs
        unreportable from their counter upper bounds alone."""
        engine = self._engine(seed=5)
        # One dominant pair (whole table, one measure) + narrow pairs.
        pairs = [(Constraint((UNBOUND, UNBOUND, UNBOUND)), 1)] + [
            (Constraint((f"a{i % 3}", f"b{(i // 3) % 3}", UNBOUND)), 2)
            for i in range(9)
        ]
        queries = engine.query()
        plan = QueryPlan(queries, pairs, top_k=1)
        results = plan.execute()
        assert plan.skipped > 0
        assert plan.evaluated_count + plan.stats_hits + plan.skipped == len(pairs)
        want = naive_batch(engine, pairs, top_k=1)
        assert [
            (r.constraint, r.subspace, r.prominence) for r in results
        ] == [(*pairs[i], p) for i, p in want]

    def test_explain_exposes_cost_model(self):
        engine = self._engine()
        pairs = sample_pairs(random.Random(2), n_pairs=10)
        plan = QueryPlan(engine.query(), pairs)
        rows = plan.explain()
        assert len(rows) == len(pairs)
        assert {row["mode"] for row in rows} <= {"indexed", "counted", "scan"}
        for row in rows:
            assert row["cost"] >= 0

    def test_bad_top_k_rejected(self):
        engine = self._engine()
        with pytest.raises(ValueError, match="top_k"):
            engine.query().batch(["* | m0"], top_k=0)

    @pytest.mark.parametrize("kind", [
        "single-stopdown", "sharded-serial", "windowed", "query-cached",
        "sharded-cached",
    ])
    def test_batch_identity_across_compositions(self, kind):
        specs = {
            "single-stopdown": lambda: EngineSpec(SCHEMA, "stopdown", CONFIG),
            "sharded-serial": lambda: EngineSpec(
                SCHEMA, "svec", CONFIG, sharding=ShardingSpec(2, "serial")
            ),
            "windowed": lambda: EngineSpec(
                SCHEMA, "stopdown", CONFIG, window=4096
            ),
            "query-cached": lambda: EngineSpec(
                SCHEMA, "svec", CONFIG, query_cache=64
            ),
            "sharded-cached": lambda: EngineSpec(
                SCHEMA, "svec", CONFIG,
                sharding=ShardingSpec(2, "serial"), query_cache=64,
            ),
        }
        rows = make_rows(50, seed=13)
        pairs = sample_pairs(random.Random(29), n_pairs=16)
        with open_engine(specs[kind]()) as engine:
            ingest_with_deletions(engine, rows, delete_every=6)
            for bounds in BOUND_GRID:
                got = engine.query().batch(pairs, **bounds)
                want = naive_batch(engine, pairs, **bounds)
                assert [
                    (r.constraint, r.subspace, r.prominence) for r in got
                ] == [(*pairs[i], p) for i, p in want], (kind, bounds)


# ----------------------------------------------------------------------
# Versioned result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_lru_eviction_and_version_staleness(self):
        cache = QueryResultCache(2)
        cache.put("a", (1, 0), "A")
        cache.put("b", (1, 0), "B")
        assert cache.get("a", (1, 0)) == (True, "A")
        cache.put("c", (1, 0), "C")  # evicts "b" (a was touched)
        assert cache.get("b", (1, 0))[0] is False
        assert cache.evictions == 1
        # Same key, newer version: stale entry is a miss, then replaced.
        assert cache.get("a", (2, 0))[0] is False
        cache.put("a", (2, 0), "A2")
        assert cache.get("a", (2, 0)) == (True, "A2")
        assert len(cache) == 2
        with pytest.raises(ValueError, match="capacity"):
            QueryResultCache(0)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="query_cache"):
            EngineSpec(SCHEMA, query_cache=0)
        doc = EngineSpec(SCHEMA, "svec", CONFIG, query_cache=9).to_dict()
        assert EngineSpec.from_dict(doc).query_cache == 9
        # Back-compat: old spec dicts without the field still load.
        doc.pop("query_cache")
        assert EngineSpec.from_dict(doc).query_cache is None

    def test_hits_and_write_invalidation(self):
        with open_engine(
            EngineSpec(SCHEMA, "svec", CONFIG, query_cache=32)
        ) as engine:
            engine.observe_many(make_rows(30))
            q = engine.query()
            first = q.skyline_text("d0=a1 | m0, m1")
            again = q.skyline_text("d0=a1 | m0, m1")
            assert [r.tid for r in first] == [r.tid for r in again]
            counters = engine.query_cache_counters()
            assert counters["hits"] == 1 and counters["misses"] == 1
            # Any write bumps (arrivals, deletions): cached answers stale.
            engine.observe({"d0": "a1", "d1": "b0", "d2": "c0",
                            "m0": 99, "m1": 99})
            fresh = engine.query().skyline_text("d0=a1 | m0, m1")
            assert [r.tid for r in fresh] == [len(engine.table) - 1 + 0] or (
                len(fresh) == 1
            )
            assert engine.query_cache_counters()["misses"] == 2
            engine.delete(fresh[0].tid)
            after_delete = engine.query().skyline_text("d0=a1 | m0, m1")
            assert fresh[0].tid not in [r.tid for r in after_delete]
            # Mutating a returned list must not poison the cache.
            after_delete.append("junk")
            assert "junk" not in engine.query().skyline_text(
                "d0=a1 | m0, m1"
            )
            stats = engine.stats()
            assert stats["kind"] == "query-cached"
            assert stats["query_cache"]["hits"] >= 1
            json.dumps(stats)

    def test_fuzz_cached_equals_uncached_under_interleaved_writes(self):
        rng = random.Random(41)
        rows = make_rows(70, seed=19, none_frac=0.1)
        cached = open_engine(
            EngineSpec(SCHEMA, "svec", CONFIG, query_cache=16)
        )
        plain = open_engine(EngineSpec(SCHEMA, "svec", CONFIG))
        pairs = sample_pairs(rng, n_pairs=10)
        try:
            live = []
            for i, row in enumerate(rows):
                for engine in (cached, plain):
                    engine.observe(row)
                live.append(cached.table[len(cached.table) - 1].tid)
                if rng.random() < 0.15 and live:
                    tid = live.pop(rng.randrange(len(live)))
                    cached.delete(tid)
                    plain.delete(tid)
                if i % 5 == 4:
                    constraint, subspace = pairs[rng.randrange(len(pairs))]
                    # Repeat each read so later repeats hit the cache.
                    for _ in range(2):
                        got = sorted(
                            r.tid for r in cached.query().skyline(
                                constraint, subspace
                            )
                        )
                        want = sorted(
                            r.tid for r in plain.query().skyline(
                                constraint, subspace
                            )
                        )
                        assert got == want, (i, constraint, subspace)
                        assert cached.query().prominence(
                            constraint, subspace
                        ) == plain.query().prominence(constraint, subspace)
            counters = cached.query_cache_counters()
            assert counters["hits"] > 0
            assert counters["misses"] > 0
        finally:
            cached.close()
            plain.close()


# ----------------------------------------------------------------------
# Sharded push-down under injected faults
# ----------------------------------------------------------------------
class TestPushDownFaults:
    @pytest.fixture(autouse=True)
    def _clean_faults(self):
        faults.clear()
        yield
        faults.clear()

    @pytest.mark.parametrize("op", ["skyband", "top_k"])
    def test_query_op_crash_restarts_and_answers(self, op):
        rows = make_rows(36, seed=9)
        reference = FactDiscoverer(SCHEMA, algorithm="svec", config=CONFIG)
        reference.observe_many(rows)
        faults.install([
            {"point": "worker.op", "action": "crash", "op": op, "after": 1}
        ])
        engine = ShardedDiscoverer(
            SCHEMA, CONFIG, n_workers=2, mode="process", chunk_size=12,
            op_timeout=15,
        )
        try:
            engine.observe_many(rows)
            constraint = Constraint(("a1", UNBOUND, UNBOUND))
            queries = engine.query()
            if op == "skyband":
                got = sorted(
                    r.tid for r in queries.skyband(constraint, 3, 2)
                )
                want = sorted(
                    r.tid
                    for r in reference.query().skyband(constraint, 3, 2)
                )
            else:
                got = queries.prominence(constraint, 3)
                want = reference.query().prominence(constraint, 3)
            assert got == want
            assert engine.fault_counters()["worker_restarts"] >= 1
        finally:
            engine.close()


# ----------------------------------------------------------------------
# TCP query op
# ----------------------------------------------------------------------
class TestTcpQueryOp:
    def test_query_op_round_trip(self):
        rows = make_rows(30, seed=31)

        async def run():
            engine = open_engine(
                EngineSpec(SCHEMA, "svec", CONFIG, query_cache=32)
            )
            server = StreamServer(engine)
            await server.start()
            listener = await server.serve_tcp("127.0.0.1", 0)
            port = listener.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)

            async def call(payload):
                writer.write(json.dumps(payload).encode() + b"\n")
                await writer.drain()
                return json.loads(await reader.readline())

            for row in rows:
                await call({"op": "ingest", "row": row})
            text = "d0=a1 | m0, m1"
            sky = await call({"op": "query", "q": text})
            sky_again = await call({"op": "query", "q": text})
            band = await call(
                {"op": "query", "q": text, "kind": "skyband", "k": 2}
            )
            prom = await call({"op": "query", "q": text, "kind": "prominence"})
            bad_query = await call({"op": "query", "q": "no pipe"})
            bad_kind = await call(
                {"op": "query", "q": text, "kind": "mystery"}
            )
            stats = await call({"op": "stats"})
            writer.close()
            await server.stop()
            return engine, sky, sky_again, band, prom, bad_query, bad_kind, stats

        (engine, sky, sky_again, band, prom, bad_query, bad_kind,
         stats) = asyncio.run(run())
        try:
            from repro.query.parser import parse_query

            constraint, subspace = parse_query("d0=a1 | m0, m1", SCHEMA)
            want = sorted(
                r.tid
                for r in contextual_skyline(engine.table, constraint, subspace)
            )
            assert sorted(sky["tids"]) == want
            assert sky_again == sky
            assert set(sky["tids"]) <= set(band["tids"])
            context = [
                r for r in engine.table if constraint.satisfied_by(r)
            ]
            assert prom["context_size"] == len(context)
            assert prom["prominence"] == pytest.approx(
                len(context) / len(want)
            )
            assert "error" in bad_query and "error" in bad_kind
            assert stats["stats"]["query_cache_hits"] >= 1
        finally:
            engine.close()
