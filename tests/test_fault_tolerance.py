"""Chaos suite: crash-safe serving end to end.

Every scenario compares a *faulted* run against an unfaulted reference
and requires property-identity — same facts (constraint, subspace,
prominence), same op counters, no accepted row lost or double-applied:

* supervised shard workers surviving injected crashes and a real
  ``SIGKILL`` mid-chunk, with deletions interleaved;
* hung workers abandoned at ``op_timeout`` and rebuilt;
* the circuit breaker degrading the pool to in-router execution;
* remote replica sets (socket workers in real subprocesses) promoting
  a surviving replica when the primary crashes or is ``SIGKILL``-ed
  mid-stream, and degrading — not dying — when a whole set is lost;
* server "kill" + write-ahead-journal replay (full replay, checkpoint +
  suffix, torn tail);
* poison rows quarantined to the dead-letter file exactly once while
  batch-mates survive;
* checkpoint writes that stay crash-consistent (an interrupted write
  never damages the previous snapshot).
"""

import asyncio
import json
import os
import signal
from contextlib import contextmanager

import pytest

from repro import DiscoveryConfig, FactDiscoverer, TableSchema
from repro.api import CheckpointPolicy, EngineSpec
from repro.extensions.snapshot import load_engine, save_engine
from repro.service import (
    JournalWriter,
    ShardedDiscoverer,
    StreamServer,
    recover_engine,
)
from repro.service import faults
from repro.service.journal import JournalCorruptError, read_ops
from repro.service.remote import run_worker

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))


def make_rows(n, start=0):
    return [
        {"d0": f"a{i % 3}", "d1": f"b{i % 2}", "m0": i % 5, "m1": (7 - i) % 5}
        for i in range(start, start + n)
    ]


def fact_key(fact):
    return (fact.constraint.values, fact.subspace, fact.prominence)


def fact_keys(factsets):
    return [[fact_key(f) for f in fs] for fs in factsets]


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def reference_run(rows, deletes=()):
    """Unfaulted single-engine run: facts per arrival + final counters."""
    engine = FactDiscoverer(SCHEMA, algorithm="svec")
    facts = fact_keys(engine.observe_many(rows))
    for tid in deletes:
        engine.delete(tid)
    return facts, engine.counters.snapshot(), engine


# ----------------------------------------------------------------------
# Supervised workers
# ----------------------------------------------------------------------
class TestWorkerCrashRecovery:
    def test_injected_crash_mid_stream_is_invisible(self):
        rows = make_rows(60)
        expected, expected_counters, ref = reference_run(rows)
        faults.install(
            [
                {
                    "point": "worker.op",
                    "action": "crash",
                    "worker": 1,
                    "op": "rows",
                    "after": 2,
                }
            ]
        )
        engine = ShardedDiscoverer(
            SCHEMA, n_workers=2, mode="process", chunk_size=16, op_timeout=15
        )
        try:
            got = fact_keys(engine.observe_many(rows))
            assert got == expected
            assert engine.counters.snapshot() == expected_counters
            tally = engine.fault_counters()
            assert tally["worker_restarts"] == 1
            assert tally["chunks_retried"] >= 1
            assert not tally["degraded"]
        finally:
            engine.close()
            ref.close()

    def test_sigkill_mid_chunk_recovers_exactly(self):
        rows = make_rows(80)
        first, rest = rows[:40], rows[40:]
        expected, expected_counters, ref = reference_run(rows, deletes=(3, 17))
        engine = ShardedDiscoverer(
            SCHEMA, n_workers=2, mode="process", chunk_size=16, op_timeout=15
        )
        try:
            got = fact_keys(engine.observe_many(first))
            victim = engine._workers[0]._process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            assert not victim.is_alive()
            # The next chunks land on a dead pipe mid-submit: the
            # supervisor must notice, restart, replay the committed
            # prefix, and re-send the in-flight chunk exactly once.
            got += fact_keys(engine.observe_many(rest))
            engine.delete(3)
            engine.delete(17)
            assert got == expected
            assert engine.counters.snapshot() == expected_counters
            assert engine.fault_counters()["worker_restarts"] >= 1
        finally:
            engine.close()
            ref.close()

    def test_crash_during_delete_applies_once(self):
        rows = make_rows(36)
        expected, expected_counters, ref = reference_run(rows, deletes=(5,))
        faults.install(
            [
                {
                    "point": "worker.op",
                    "action": "crash",
                    "worker": 0,
                    "op": "delete",
                    "after": 1,
                }
            ]
        )
        engine = ShardedDiscoverer(
            SCHEMA, n_workers=2, mode="process", chunk_size=12, op_timeout=15
        )
        try:
            got = fact_keys(engine.observe_many(rows))
            engine.delete(5)
            assert got == expected
            assert engine.counters.snapshot() == expected_counters
            assert engine.fault_counters()["worker_restarts"] == 1
        finally:
            engine.close()
            ref.close()

    def test_hung_worker_abandoned_at_op_timeout(self):
        rows = make_rows(24)
        expected, expected_counters, ref = reference_run(rows)
        faults.install(
            [
                {
                    "point": "worker.op",
                    "action": "delay",
                    "worker": 1,
                    "op": "rows",
                    "delay": 30.0,
                    "after": 1,
                }
            ]
        )
        engine = ShardedDiscoverer(
            SCHEMA, n_workers=2, mode="process", chunk_size=12, op_timeout=0.5
        )
        try:
            got = fact_keys(engine.observe_many(rows))
            assert got == expected
            assert engine.counters.snapshot() == expected_counters
            assert engine.fault_counters()["worker_restarts"] >= 1
        finally:
            engine.close()
            ref.close()

    def test_dropped_reply_is_recovered(self):
        # A dropped reply models a hang (pipes cannot lose a message
        # without dying), so it is injected on a sync op — the router
        # blocks on the missing ack, times out, rebuilds and retries
        # the delete exactly once.
        rows = make_rows(24)
        expected, expected_counters, ref = reference_run(rows, deletes=(9,))
        faults.install(
            [
                {
                    "point": "worker.reply",
                    "action": "drop",
                    "worker": 0,
                    "op": "delete",
                    "after": 1,
                }
            ]
        )
        engine = ShardedDiscoverer(
            SCHEMA, n_workers=2, mode="process", chunk_size=12, op_timeout=0.5
        )
        try:
            got = fact_keys(engine.observe_many(rows))
            engine.delete(9)
            assert got == expected
            assert engine.counters.snapshot() == expected_counters
            assert engine.fault_counters()["worker_restarts"] >= 1
        finally:
            engine.close()
            ref.close()


class TestCircuitBreakerDegrade:
    def test_degrades_to_in_router_execution(self):
        rows = make_rows(48)
        expected, expected_counters, ref = reference_run(rows, deletes=(7,))
        # Every restart budget is zero: the first crash trips the
        # breaker and the pool must degrade, not die.
        faults.install(
            [
                {
                    "point": "worker.op",
                    "action": "crash",
                    "worker": 1,
                    "op": "rows",
                    "after": 2,
                }
            ]
        )
        engine = ShardedDiscoverer(
            SCHEMA,
            n_workers=2,
            mode="process",
            chunk_size=12,
            op_timeout=15,
            max_restarts=0,
        )
        try:
            got = fact_keys(engine.observe_many(rows))
            engine.delete(7)
            assert engine.degraded
            assert engine.fault_counters()["degraded"]
            assert got == expected
            assert engine.counters.snapshot() == expected_counters
            # Degraded pool keeps serving new arrivals correctly.
            more = make_rows(12, start=48)
            ref_more = fact_keys(ref.observe_many(more))
            assert fact_keys(engine.observe_many(more)) == ref_more
        finally:
            engine.close()
            ref.close()

    def test_degrade_during_delete(self):
        rows = make_rows(30)
        expected, expected_counters, ref = reference_run(rows, deletes=(2, 11))
        faults.install(
            [
                {
                    "point": "worker.op",
                    "action": "crash",
                    "worker": 0,
                    "op": "delete",
                    "after": 1,
                }
            ]
        )
        engine = ShardedDiscoverer(
            SCHEMA,
            n_workers=2,
            mode="process",
            chunk_size=10,
            op_timeout=15,
            max_restarts=0,
        )
        try:
            got = fact_keys(engine.observe_many(rows))
            engine.delete(2)
            engine.delete(11)
            assert engine.degraded
            assert got == expected
            assert engine.counters.snapshot() == expected_counters
        finally:
            engine.close()
            ref.close()


# ----------------------------------------------------------------------
# Remote replica sets (socket workers in real subprocesses)
# ----------------------------------------------------------------------
@contextmanager
def socket_workers(count):
    """Spawn ``count`` socket shard-workers, each in its own OS process
    (crash faults use ``os._exit`` and SIGKILL needs a real pid, so
    in-process servers would take the test runner down with them).
    Yields ``(addresses, processes)`` index-aligned."""
    import multiprocessing as mp

    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)
    processes, addresses = [], []
    try:
        for _ in range(count):
            ready = ctx.Queue()
            process = ctx.Process(
                target=run_worker,
                args=("127.0.0.1", 0, ready, False),
                daemon=True,
            )
            process.start()
            port = ready.get(timeout=30)
            processes.append(process)
            addresses.append(f"127.0.0.1:{port}")
        yield addresses, processes
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)


class TestRemoteReplicaFailover:
    def test_injected_crash_promotes_surviving_replica(self):
        # Kill shard 0's primary mid-stream via fault injection.  The
        # router forwards armed faults to the primary replica only, so
        # the crash exercises promotion: the surviving replica — byte
        # -identical by determinism — takes over with no recovery work,
        # and the merged stream must not lose or duplicate a fact.
        rows = make_rows(64)
        expected, expected_counters, ref = reference_run(rows)
        with socket_workers(3) as (addresses, _processes):
            faults.install(
                [
                    {
                        "point": "worker.op",
                        "action": "crash",
                        "worker": 0,
                        "op": "rows",
                        "after": 2,
                    }
                ]
            )
            engine = ShardedDiscoverer(
                SCHEMA,
                remote={"0": addresses[:2], "1": addresses[2:]},
                chunk_size=16,
                op_timeout=15,
            )
            try:
                got = fact_keys(engine.observe_many(rows))
                assert got == expected
                assert engine.counters.snapshot() == expected_counters
                tally = engine.fault_counters()
                assert tally["replica_failovers"] >= 1
                assert not tally["degraded"]
                assert len(engine._workers[0].replicas) == 1
            finally:
                engine.close()
                ref.close()

    def test_sigkill_replica_mid_stream_loses_nothing(self):
        rows = make_rows(80)
        first, rest = rows[:40], rows[40:]
        expected, expected_counters, ref = reference_run(rows, deletes=(3, 17))
        with socket_workers(4) as (addresses, processes):
            engine = ShardedDiscoverer(
                SCHEMA,
                remote={"0": addresses[:2], "1": addresses[2:]},
                chunk_size=16,
                op_timeout=15,
            )
            try:
                got = fact_keys(engine.observe_many(first))
                # A real kill of shard 0's primary: connections reset,
                # the replica set drops it and promotes, no router
                # restart, no re-ingestion.
                victim = processes[0]
                os.kill(victim.pid, signal.SIGKILL)
                victim.join(timeout=10)
                assert not victim.is_alive()
                got += fact_keys(engine.observe_many(rest))
                engine.delete(3)
                engine.delete(17)
                assert got == expected
                assert engine.counters.snapshot() == expected_counters
                tally = engine.fault_counters()
                assert tally["replica_failovers"] >= 1
                assert not tally["degraded"]
            finally:
                engine.close()
                ref.close()

    def test_whole_replica_set_lost_degrades_not_dies(self):
        # Shard 1 has a single replica; its crash exhausts the set, so
        # the router must degrade to in-router execution (rebuilt from
        # the committed op log) and keep serving correctly.
        rows = make_rows(48)
        expected, expected_counters, ref = reference_run(rows, deletes=(7,))
        with socket_workers(2) as (addresses, _processes):
            faults.install(
                [
                    {
                        "point": "worker.op",
                        "action": "crash",
                        "worker": 1,
                        "op": "rows",
                        "after": 2,
                    }
                ]
            )
            engine = ShardedDiscoverer(
                SCHEMA,
                remote={"0": addresses[:1], "1": addresses[1:]},
                chunk_size=12,
                op_timeout=15,
            )
            try:
                got = fact_keys(engine.observe_many(rows))
                engine.delete(7)
                assert engine.degraded
                assert engine.fault_counters()["degraded"]
                assert got == expected
                assert engine.counters.snapshot() == expected_counters
                more = make_rows(12, start=48)
                ref_more = fact_keys(ref.observe_many(more))
                assert fact_keys(engine.observe_many(more)) == ref_more
            finally:
                engine.close()
                ref.close()


# ----------------------------------------------------------------------
# Journal replay
# ----------------------------------------------------------------------
def service_spec(tmp_path, name="ckpt.snap"):
    return EngineSpec(
        SCHEMA,
        algorithm="svec",
        checkpoint=CheckpointPolicy(
            path=str(tmp_path / name),
            journal_dir=str(tmp_path / "wal"),
        ),
    )


class TestJournalRecovery:
    def test_journal_round_trip(self, tmp_path):
        rows = make_rows(40)
        spec = service_spec(tmp_path)
        with JournalWriter(str(tmp_path / "wal")) as journal:
            for row in rows:
                journal.append_ingest(row)
            journal.append_delete(4)
            journal.commit()
        engine, report = recover_engine(spec)
        expected, expected_counters, ref = reference_run(rows, deletes=(4,))
        try:
            assert report.source == "journal"
            assert report.ops_replayed == len(rows) + 1
            assert not report.torn_tail
            probe = make_rows(1, start=99)
            assert fact_keys(engine.observe_many(probe)) == fact_keys(
                ref.observe_many(probe)
            )
        finally:
            engine.close()
            ref.close()

    def test_server_kill_then_replay(self, tmp_path):
        rows = make_rows(50)
        spec = service_spec(tmp_path)
        expected, expected_counters, ref = reference_run(rows, deletes=(6,))

        async def faulted_session():
            from repro.api import open_engine

            server = StreamServer(
                open_engine(EngineSpec(SCHEMA, algorithm="svec")),
                journal_dir=str(tmp_path / "wal"),
                batch_max=8,
            )
            await server.start()
            await server.ingest_many(rows)
            await server.delete(6)
            await server.drain()
            # Simulated kill: no final checkpoint is ever written.
            await server.stop(drain=False)
            server.engine.close()

        asyncio.run(faulted_session())
        assert not os.path.exists(spec.checkpoint.path)
        engine, report = recover_engine(spec)
        try:
            assert report.source == "journal"
            assert report.ops_replayed == len(rows) + 1
            assert engine.counters.snapshot() == expected_counters
            probe = make_rows(3, start=77)
            assert fact_keys(engine.observe_many(probe)) == fact_keys(
                ref.observe_many(probe)
            )
        finally:
            engine.close()
            ref.close()

    def test_checkpoint_plus_journal_suffix(self, tmp_path):
        rows1, rows2 = make_rows(30), make_rows(20, start=30)
        spec = service_spec(tmp_path)
        expected, expected_counters, ref = reference_run(rows1 + rows2)

        async def session_one():
            from repro.api import open_engine

            server = StreamServer(open_engine(spec), batch_max=8)
            await server.start()
            await server.ingest_many(rows1)
            await server.stop()  # graceful: checkpoint + journal prune
            server.engine.close()

        async def session_two():
            engine, report = recover_engine(spec)
            assert report.source == "checkpoint"
            server = StreamServer(engine, batch_max=8)
            await server.start()
            await server.ingest_many(rows2)
            await server.drain()
            await server.stop(drain=False)  # killed before checkpointing
            engine.close()

        asyncio.run(session_one())
        asyncio.run(session_two())
        engine, report = recover_engine(spec)
        try:
            assert report.source == "checkpoint+journal"
            assert report.checkpoint_seq == len(rows1)
            assert report.ops_replayed == len(rows2)
            assert engine.counters.snapshot() == expected_counters
            probe = make_rows(2, start=88)
            assert fact_keys(engine.observe_many(probe)) == fact_keys(
                ref.observe_many(probe)
            )
        finally:
            engine.close()
            ref.close()

    def test_torn_tail_is_dropped_and_reported(self, tmp_path):
        rows = make_rows(25)
        spec = service_spec(tmp_path)
        with JournalWriter(str(tmp_path / "wal")) as journal:
            for row in rows:
                journal.append_ingest(row)
        segments = sorted((tmp_path / "wal").iterdir())
        with open(segments[-1], "ab") as fh:
            fh.write(b"\x40\x00\x00\x00\x99")  # crash mid-append
        engine, report = recover_engine(spec)
        expected, expected_counters, ref = reference_run(rows)
        try:
            assert report.torn_tail
            assert report.ops_replayed == len(rows)
            assert engine.counters.snapshot() == expected_counters
        finally:
            engine.close()
            ref.close()
        # The resumed writer truncates the torn tail and appends after
        # the last intact record.
        with JournalWriter(str(tmp_path / "wal")) as journal:
            assert journal.last_seq == len(rows)
            journal.append_ingest(make_rows(1, start=99)[0])
        ops, torn = read_ops(str(tmp_path / "wal"))
        assert not torn
        assert len(ops) == len(rows) + 1


# ----------------------------------------------------------------------
# Poison rows / dead-letter quarantine
# ----------------------------------------------------------------------
class PoisonEngine(FactDiscoverer):
    """Applies rows one at a time; rows marked ``d0 == "POISON"`` raise
    before touching the table, so a poison row costs itself only."""

    def facts_for_many(self, rows):
        out = []
        for row in rows:
            if row.get("d0") == "POISON":
                raise ValueError(f"poison row rejected: {row!r}")
            out.extend(super().facts_for_many([row]))
        return out


class TestPoisonRows:
    def test_quarantined_exactly_once_others_survive(self, tmp_path):
        healthy = make_rows(30)
        poison = [
            {"d0": "POISON", "d1": "b0", "m0": 1, "m1": 1},
            {"d0": "POISON", "d1": "b1", "m0": 2, "m1": 2},
        ]
        rows = healthy[:10] + poison[:1] + healthy[10:20] + poison[1:] + healthy[20:]
        spec = service_spec(tmp_path)
        dead = tmp_path / "dead.ndjson"
        expected, expected_counters, ref = reference_run(healthy, deletes=(3,))

        async def run():
            server = StreamServer(
                PoisonEngine(SCHEMA, algorithm="svec"),
                journal_dir=str(tmp_path / "wal"),
                dead_letter_path=str(dead),
                batch_max=8,
            )
            await server.start()
            for row in rows:
                await server.ingest(row)
            await server.delete(3)
            await server.drain()
            stats = server.stats
            live_counters = server.engine.counters.snapshot()
            await server.stop(drain=False)
            server.engine.close()
            return stats, live_counters

        stats, live_counters = asyncio.run(run())
        assert stats.rows_quarantined == len(poison)
        assert stats.processed_rows == len(healthy)
        # Each poison row lands in the dead-letter file exactly once,
        # with enough context to retry it by hand.
        entries = [json.loads(line) for line in dead.read_text().splitlines()]
        assert [e["row"] for e in entries] == poison
        assert all(e["error_type"] == "ValueError" for e in entries)
        # Accepted rows were neither lost nor double-applied: the live
        # state and the journal-recovered state both equal the
        # poison-free reference.
        assert live_counters == expected_counters
        engine, report = recover_engine(spec)
        try:
            assert report.ops_replayed == len(healthy) + 1
            assert not report.replay_errors
            assert engine.counters.snapshot() == expected_counters
            probe = make_rows(2, start=55)
            assert fact_keys(engine.observe_many(probe)) == fact_keys(
                ref.observe_many(probe)
            )
        finally:
            engine.close()
            ref.close()

    def test_poison_rows_never_reach_the_journal(self, tmp_path):
        rows = make_rows(6) + [{"d0": "POISON", "d1": "b0", "m0": 0, "m1": 0}]

        async def run():
            server = StreamServer(
                PoisonEngine(SCHEMA, algorithm="svec"),
                journal_dir=str(tmp_path / "wal"),
                batch_max=4,
            )
            await server.start()
            for row in rows:
                await server.ingest(row)
            await server.drain()
            await server.stop(drain=False)
            server.engine.close()

        asyncio.run(run())
        ops, _ = read_ops(str(tmp_path / "wal"))
        assert len(ops) == 6
        assert all(op["row"]["d0"] != "POISON" for op in ops)


# ----------------------------------------------------------------------
# Crash-consistent checkpoints
# ----------------------------------------------------------------------
class TestCheckpointCrashConsistency:
    def test_interrupted_write_keeps_previous_snapshot(self, tmp_path):
        path = str(tmp_path / "engine.snap")
        engine = FactDiscoverer(SCHEMA, algorithm="svec")
        engine.observe_many(make_rows(12))
        save_engine(engine, path)
        golden = engine.counters.snapshot()

        engine.observe_many(make_rows(12, start=12))
        faults.install(
            [{"point": "checkpoint.write", "action": "corrupt", "after": 1}]
        )
        with pytest.raises(OSError):
            save_engine(engine, path)
        # The torn temp file is cleaned up and the previous snapshot
        # still loads, bit-for-bit usable.
        assert [p for p in tmp_path.iterdir() if ".tmp." in p.name] == []
        restored = load_engine(path)
        assert restored.counters.snapshot() == golden
        restored.close()

        # With the fault spent, the very next save succeeds.
        save_engine(engine, path)
        restored = load_engine(path)
        assert restored.counters.snapshot() == engine.counters.snapshot()
        restored.close()
        engine.close()

    def test_truncated_snapshot_never_loads_partially(self, tmp_path):
        path = tmp_path / "engine.snap"
        engine = FactDiscoverer(SCHEMA, algorithm="svec")
        engine.observe_many(make_rows(10))
        save_engine(engine, str(path))
        engine.close()
        data = path.read_bytes()
        # An interruption at *any* byte boundary must yield a loud
        # ValueError, never a silently partial restore.
        for cut in (1, len(data) // 4, len(data) // 2, len(data) - 2):
            torn = tmp_path / f"torn-{cut}.snap"
            torn.write_bytes(data[:cut])
            with pytest.raises(ValueError):
                load_engine(str(torn))


# ----------------------------------------------------------------------
# Fault registry plumbing
# ----------------------------------------------------------------------
class TestFaultRegistry:
    def test_after_and_times_arming(self):
        faults.install(
            [{"point": "worker.op", "action": "drop", "after": 2, "times": 1}]
        )
        assert faults.fire("worker.op") is None  # seen 1 < after 2
        fault = faults.fire("worker.op")
        assert fault is not None and fault.action == "drop"
        assert faults.fire("worker.op") is None  # times budget spent

    def test_scoping_by_worker_and_op(self):
        faults.install(
            [{"point": "worker.op", "action": "drop", "worker": 1, "op": "rows"}]
        )
        assert faults.fire("worker.op", worker=0, op="rows") is None
        assert faults.fire("worker.op", worker=1, op="delete") is None
        assert faults.fire("worker.op", worker=1, op="rows") is not None

    def test_install_from_env(self, monkeypatch):
        monkeypatch.setenv(
            faults.ENV_VAR,
            json.dumps({"point": "journal.append", "action": "corrupt"}),
        )
        faults.install_from_env()
        active = faults.active_dicts()
        assert len(active) == 1
        assert active[0]["point"] == "journal.append"
        monkeypatch.setenv(faults.ENV_VAR, "{not json")
        with pytest.raises(ValueError):
            faults.install_from_env()

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            faults.install([{"point": "bogus.place"}])
