"""Tests for the k-d tree substrate (BaselineIdx's index)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.record import Record
from repro.index.kdtree import KDTree


def rec(tid, *values):
    vals = tuple(float(v) for v in values)
    return Record(tid, ("x",), vals, vals)


class TestBasics:
    def test_empty_tree(self):
        tree = KDTree(2)
        assert len(tree) == 0
        assert tree.dominating_candidates((0, 0), 0b11) == []

    def test_rejects_zero_axes(self):
        with pytest.raises(ValueError):
            KDTree(0)

    def test_rejects_wrong_arity(self):
        tree = KDTree(2)
        with pytest.raises(ValueError):
            tree.insert(rec(0, 1.0))

    def test_single_point(self):
        tree = KDTree(2)
        tree.insert(rec(0, 3, 4))
        assert [r.tid for r in tree.dominating_candidates((3, 4), 0b11)] == [0]
        assert tree.dominating_candidates((4, 4), 0b11) == []

    def test_items_returns_everything(self):
        tree = KDTree(2)
        for i in range(10):
            tree.insert(rec(i, i, 10 - i))
        assert {r.tid for r in tree.items()} == set(range(10))


class TestOneSidedRangeQuery:
    def test_subspace_only_constrains_selected_axes(self):
        tree = KDTree(2)
        tree.insert(rec(0, 5, 0))
        tree.insert(rec(1, 0, 5))
        # Constrain axis 0 only: record 1 fails (0 < 3), record 0 passes.
        got = {r.tid for r in tree.dominating_candidates((3, 99), 0b01)}
        assert got == {0}

    def test_equal_values_are_candidates(self):
        """Weak dominance: equality on every axis still qualifies."""
        tree = KDTree(2)
        tree.insert(rec(0, 2, 2))
        got = {r.tid for r in tree.dominating_candidates((2, 2), 0b11)}
        assert got == {0}

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=6),
            ),
            max_size=40,
        ),
        st.tuples(
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=6),
        ),
        st.integers(min_value=1, max_value=7),
    )
    def test_matches_linear_scan(self, points, probe, subspace):
        tree = KDTree(3)
        records = [rec(i, *p) for i, p in enumerate(points)]
        for r in records:
            tree.insert(r)
        got = {r.tid for r in tree.dominating_candidates(probe, subspace)}
        expected = set()
        for r in records:
            ok = True
            for axis in range(3):
                if subspace & (1 << axis) and r.values[axis] < probe[axis]:
                    ok = False
                    break
            if ok:
                expected.add(r.tid)
        assert got == expected
