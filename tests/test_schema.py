"""Unit tests for repro.core.schema."""

import pytest

from repro import MAX, MIN, SchemaError, TableSchema


class TestConstruction:
    def test_basic(self):
        s = TableSchema(("d1", "d2"), ("m1",))
        assert s.n_dimensions == 2
        assert s.n_measures == 1
        assert s.dimensions == ("d1", "d2")
        assert s.measures == ("m1",)

    def test_accepts_lists(self):
        s = TableSchema(["d"], ["m"])
        assert s.dimensions == ("d",)

    def test_requires_dimensions(self):
        with pytest.raises(SchemaError):
            TableSchema((), ("m",))

    def test_requires_measures(self):
        with pytest.raises(SchemaError):
            TableSchema(("d",), ())

    def test_rejects_duplicate_names(self):
        with pytest.raises(SchemaError):
            TableSchema(("d", "d"), ("m",))

    def test_rejects_name_shared_between_spaces(self):
        with pytest.raises(SchemaError):
            TableSchema(("x",), ("x",))

    def test_rejects_unknown_preference_attribute(self):
        with pytest.raises(SchemaError):
            TableSchema(("d",), ("m",), {"other": MIN})

    def test_rejects_bad_preference_value(self):
        with pytest.raises(SchemaError):
            TableSchema(("d",), ("m",), {"m": "upwards"})


class TestPreferences:
    def test_default_is_max(self):
        s = TableSchema(("d",), ("m1", "m2"))
        assert s.preference("m1") == MAX
        assert s.measure_signs() == (1, 1)

    def test_min_preference_sign(self):
        s = TableSchema(("d",), ("points", "fouls"), {"fouls": MIN})
        assert s.preference("fouls") == MIN
        assert s.measure_signs() == (1, -1)

    def test_preference_unknown_measure_raises(self):
        s = TableSchema(("d",), ("m",))
        with pytest.raises(SchemaError):
            s.preference("nope")


class TestMasks:
    def test_full_measure_mask(self):
        s = TableSchema(("d",), ("a", "b", "c"))
        assert s.full_measure_mask == 0b111

    def test_measure_mask_roundtrip(self):
        s = TableSchema(("d",), ("a", "b", "c"))
        mask = s.measure_mask(("a", "c"))
        assert mask == 0b101
        assert s.measure_names(mask) == ("a", "c")

    def test_measure_names_out_of_range(self):
        s = TableSchema(("d",), ("a",))
        with pytest.raises(SchemaError):
            s.measure_names(0b10)

    def test_indexes(self):
        s = TableSchema(("d1", "d2"), ("m1", "m2"))
        assert s.dimension_index("d2") == 1
        assert s.measure_index("m2") == 1
        with pytest.raises(SchemaError):
            s.dimension_index("m1")
        with pytest.raises(SchemaError):
            s.measure_index("d1")


class TestRows:
    def test_project_row(self):
        s = TableSchema(("d",), ("m",))
        dims, meas = s.project_row({"d": "x", "m": 3, "extra": 9})
        assert dims == ("x",)
        assert meas == (3,)

    def test_project_row_missing_dimension(self):
        s = TableSchema(("d",), ("m",))
        with pytest.raises(SchemaError, match="dimension"):
            s.project_row({"m": 3})

    def test_project_row_missing_measure(self):
        s = TableSchema(("d",), ("m",))
        with pytest.raises(SchemaError, match="measure"):
            s.project_row({"d": "x"})

    def test_describe(self):
        s = TableSchema(("d",), ("m",), {"m": MIN})
        desc = s.describe()
        assert desc["dimensions"] == ["d"]
        assert desc["measures"] == ["m (min)"]
