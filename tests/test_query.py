"""Tests for the forward-query layer and the textual query language."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Constraint, SchemaError, TableSchema, make_algorithm
from repro.core.skyline import contextual_skyline
from repro.query import ContextualQueryEngine, QueryParseError, format_query, parse_query

SCHEMA = TableSchema(("team", "opp"), ("pts", "ast"))


class TestParser:
    def test_basic(self):
        c, m = parse_query("team=Celtics & opp=Nets | pts, ast", SCHEMA)
        assert c.to_mapping(SCHEMA) == {"team": "Celtics", "opp": "Nets"}
        assert m == 0b11

    def test_star_constraint(self):
        c, m = parse_query("* | pts", SCHEMA)
        assert c.is_top
        assert m == 0b01

    def test_empty_constraint_means_top(self):
        c, _m = parse_query(" | pts", SCHEMA)
        assert c.is_top

    def test_numeric_value_coercion(self):
        c, _ = parse_query("team=12 | pts", SCHEMA)
        assert c.to_mapping(SCHEMA) == {"team": 12}

    def test_missing_pipe(self):
        with pytest.raises(QueryParseError, match="must contain"):
            parse_query("team=Celtics", SCHEMA)

    def test_missing_measures(self):
        with pytest.raises(QueryParseError, match="no measure"):
            parse_query("team=Celtics |", SCHEMA)

    def test_conjunct_without_equals(self):
        with pytest.raises(QueryParseError, match="lacks '='"):
            parse_query("team | pts", SCHEMA)

    def test_duplicate_binding(self):
        with pytest.raises(QueryParseError, match="bound twice"):
            parse_query("team=A & team=B | pts", SCHEMA)

    def test_duplicate_measure(self):
        with pytest.raises(QueryParseError, match="duplicate measure"):
            parse_query("* | pts, pts", SCHEMA)

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            parse_query("coach=X | pts", SCHEMA)
        with pytest.raises(SchemaError):
            parse_query("* | fouls", SCHEMA)

    def test_format_roundtrip(self):
        text = "team=Celtics & opp=Nets | pts, ast"
        c, m = parse_query(text, SCHEMA)
        assert parse_query(format_query(c, m, SCHEMA), SCHEMA) == (c, m)

    def test_format_top(self):
        c, m = parse_query("* | ast", SCHEMA)
        assert format_query(c, m, SCHEMA) == "* | ast"


ROWS = [
    {"team": "T", "opp": "U", "pts": 10, "ast": 2},
    {"team": "T", "opp": "V", "pts": 5, "ast": 9},
    {"team": "T", "opp": "U", "pts": 3, "ast": 3},
    {"team": "W", "opp": "U", "pts": 8, "ast": 8},
]


class TestContextualQueryEngine:
    @pytest.mark.parametrize(
        "name", ["bottomup", "topdown", "sbottomup", "stopdown", "bruteforce"]
    )
    def test_skyline_matches_oracle(self, name):
        algo = make_algorithm(name, SCHEMA)
        algo.process_stream(ROWS)
        queries = ContextualQueryEngine(algo)
        for text in ["team=T | pts, ast", "* | pts", "opp=U | ast", "team=T & opp=U | pts"]:
            constraint, subspace = parse_query(text, SCHEMA)
            expected = {
                r.tid for r in contextual_skyline(algo.table, constraint, subspace)
            }
            got = {r.tid for r in queries.skyline(constraint, subspace)}
            assert got == expected, (name, text)

    def test_skyband_k1_is_skyline(self):
        algo = make_algorithm("bottomup", SCHEMA)
        algo.process_stream(ROWS)
        queries = ContextualQueryEngine(algo)
        constraint, subspace = parse_query("* | pts, ast", SCHEMA)
        sky = {r.tid for r in queries.skyline(constraint, subspace)}
        band = {r.tid for r in queries.skyband(constraint, subspace, k=1)}
        assert band == sky

    def test_skyband_grows_with_k(self):
        algo = make_algorithm("bottomup", SCHEMA)
        algo.process_stream(ROWS)
        queries = ContextualQueryEngine(algo)
        constraint, subspace = parse_query("* | pts", SCHEMA)
        sizes = [len(queries.skyband(constraint, subspace, k)) for k in (1, 2, 3, 4)]
        assert sizes == sorted(sizes)
        assert sizes[-1] == len(ROWS)

    def test_skyband_members_dominated_by_fewer_than_k(self):
        from repro.core.dominance import dominates

        algo = make_algorithm("bottomup", SCHEMA)
        algo.process_stream(ROWS)
        queries = ContextualQueryEngine(algo)
        constraint, subspace = parse_query("* | pts, ast", SCHEMA)
        for k in (1, 2, 3):
            for member in queries.skyband(constraint, subspace, k):
                dominators = sum(
                    1
                    for other in algo.table
                    if other.tid != member.tid
                    and dominates(other, member, subspace)
                )
                assert dominators < k

    def test_skyband_k_validation(self):
        algo = make_algorithm("bottomup", SCHEMA)
        queries = ContextualQueryEngine(algo)
        with pytest.raises(ValueError):
            queries.skyband(Constraint.top(2), 0b1, k=0)

    def test_context_size_and_prominence(self):
        algo = make_algorithm("bottomup", SCHEMA)
        algo.process_stream(ROWS)
        queries = ContextualQueryEngine(algo)
        constraint, subspace = parse_query("team=T | pts", SCHEMA)
        assert queries.context_size(constraint) == 3
        # Skyline of team=T on pts is just the 10-point game.
        assert queries.prominence(constraint, subspace) == 3.0

    def test_prominence_empty_context(self):
        algo = make_algorithm("bottomup", SCHEMA)
        algo.process_stream(ROWS)
        queries = ContextualQueryEngine(algo)
        constraint, subspace = parse_query("team=NOPE | pts", SCHEMA)
        assert queries.prominence(constraint, subspace) is None

    def test_is_skyline_tuple(self):
        algo = make_algorithm("topdown", SCHEMA)
        algo.process_stream(ROWS)
        queries = ContextualQueryEngine(algo)
        constraint, subspace = parse_query("team=T | pts", SCHEMA)
        assert queries.is_skyline_tuple(0, constraint, subspace)
        assert not queries.is_skyline_tuple(2, constraint, subspace)

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["T", "W"]),
                st.sampled_from(["U", "V"]),
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_topdown_reconstruction_property(self, tuples):
        rows = [
            {"team": t, "opp": o, "pts": p, "ast": a} for t, o, p, a in tuples
        ]
        algo = make_algorithm("topdown", SCHEMA)
        algo.process_stream(rows)
        queries = ContextualQueryEngine(algo)
        for text in ["* | pts, ast", "team=T | pts", "team=T & opp=U | ast"]:
            constraint, subspace = parse_query(text, SCHEMA)
            expected = {
                r.tid for r in contextual_skyline(algo.table, constraint, subspace)
            }
            got = {r.tid for r in queries.skyline(constraint, subspace)}
            assert got == expected
