"""Unit + property tests for dominance and Proposition 4."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.dominance import (
    ComparisonOutcome,
    compare,
    dominated_by_any,
    dominates,
    measure_projection,
)
from repro.core.lattice import iter_submasks
from repro.core.record import Record


def rec(tid, *values):
    vals = tuple(float(v) for v in values)
    return Record(tid, ("x",), vals, vals)


vectors = st.lists(st.integers(min_value=0, max_value=4), min_size=3, max_size=3)


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates(rec(0, 3, 3), rec(1, 1, 1), 0b11)

    def test_equal_tuples_do_not_dominate(self):
        assert not dominates(rec(0, 2, 2), rec(1, 2, 2), 0b11)

    def test_needs_strictness_on_one_attribute(self):
        assert dominates(rec(0, 2, 3), rec(1, 2, 2), 0b11)

    def test_incomparable(self):
        assert not dominates(rec(0, 3, 1), rec(1, 1, 3), 0b11)
        assert not dominates(rec(1, 1, 3), rec(0, 3, 1), 0b11)

    def test_subspace_restriction(self):
        a, b = rec(0, 5, 0), rec(1, 1, 9)
        assert dominates(a, b, 0b01)  # m1 only
        assert dominates(b, a, 0b10)  # m2 only
        assert not dominates(a, b, 0b11)

    def test_empty_subspace_never_dominates(self):
        assert not dominates(rec(0, 9, 9), rec(1, 0, 0), 0)

    @given(vectors, vectors)
    def test_antisymmetry(self, u, v):
        a, b = rec(0, *u), rec(1, *v)
        full = 0b111
        assert not (dominates(a, b, full) and dominates(b, a, full))

    @given(vectors, vectors, vectors)
    def test_transitivity(self, u, v, w):
        a, b, c = rec(0, *u), rec(1, *v), rec(2, *w)
        full = 0b111
        if dominates(a, b, full) and dominates(b, c, full):
            assert dominates(a, c, full)


class TestProposition4:
    def test_partition_masks(self):
        out = compare(rec(0, 3, 1, 2), rec(1, 1, 5, 2))
        assert out.gt == 0b001
        assert out.lt == 0b010
        assert out.eq == 0b100

    @given(vectors, vectors)
    def test_partition_is_disjoint_cover(self, u, v):
        out = compare(rec(0, *u), rec(1, *v))
        assert out.gt | out.lt | out.eq == 0b111
        assert out.gt & out.lt == 0
        assert out.gt & out.eq == 0
        assert out.lt & out.eq == 0

    @given(vectors, vectors)
    def test_prop4_matches_direct_dominance(self, u, v):
        """t ≺_M t' iff M∩M< ≠ ∅ and M∩M> = ∅, for every subspace M."""
        t, other = rec(0, *u), rec(1, *v)
        out = compare(t, other)
        for subspace in range(1, 1 << 3):
            assert out.dominated_in(subspace) == dominates(other, t, subspace)
            assert out.dominates_in(subspace) == dominates(t, other, subspace)

    @given(vectors, vectors)
    def test_dominated_subspaces_enumeration(self, u, v):
        t, other = rec(0, *u), rec(1, *v)
        out = compare(t, other)
        enumerated = set(out.dominated_subspaces(0b111))
        direct = {
            m for m in range(1, 1 << 3) if dominates(other, t, m)
        }
        assert enumerated == direct


class TestHelpers:
    def test_dominated_by_any(self):
        t = rec(0, 1, 1)
        assert dominated_by_any(t, [rec(1, 0, 0), rec(2, 2, 2)], 0b11)
        assert not dominated_by_any(t, [rec(1, 0, 0)], 0b11)

    def test_measure_projection(self):
        assert measure_projection(rec(0, 1, 2, 3), 0b101) == (1.0, 3.0)
        assert measure_projection(rec(0, 1, 2, 3), 0) == ()
