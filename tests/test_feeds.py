"""Materialized feed tier: exactness against the query oracle.

The load-bearing property: a :class:`FeedStore` maintained incrementally
off the fact stream holds, per segment, *identical* standings to an
on-demand ``engine.query().batch(...)`` over the same candidate pairs —
under interleaved arrivals and deletions, across single, windowed, and
sharded compositions, and under read-time ``τ`` floors / top-k cuts.
"""

import asyncio
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TableSchema
from repro.api import EngineSpec, FeedSpec, ShardingSpec, open_engine
from repro.core.config import DiscoveryConfig
from repro.core.constraint import satisfied_constraints
from repro.service import FeedStore, StreamServer
from repro.service.feeds import engine_version

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))

row_strategy = st.fixed_dictionaries(
    {
        "d0": st.sampled_from(["a", "b", "c"]),
        "d1": st.sampled_from(["x", "y"]),
        "m0": st.integers(min_value=0, max_value=4),
        "m1": st.integers(min_value=0, max_value=4),
    }
)

#: Interleaved arrivals (row dict) and deletions (True deletes the
#: oldest still-live tuple, no-op when the table is empty).
op_strategy = st.lists(
    st.one_of(row_strategy, st.just(True)), min_size=1, max_size=18
)


def make_spec(**overrides) -> EngineSpec:
    defaults = dict(
        schema=SCHEMA,
        score=True,
        feeds=FeedSpec(group_by=("d0",)),
    )
    defaults.update(overrides)
    return EngineSpec(**defaults)


def oracle_segments(engine, store):
    """Expected standings, derived on demand from the live engine: one
    ``query().batch`` over every candidate pair of every live tuple."""
    table = engine.table
    pairs = set()
    for i in range(len(table)):
        record = table[i]
        for constraint in satisfied_constraints(record, store._bound_cap):
            for subspace in store._subspaces:
                pairs.add((constraint, subspace))
    if not pairs:
        return {}
    ordered = sorted(pairs, key=lambda p: (repr(p[0].values), p[1]))
    results = engine.query().batch(ordered)
    expected = {}
    for result in results:
        if result.context_size <= 0:
            continue
        key = store.segment_key(result.constraint, result.subspace)
        expected.setdefault(key, {})[
            (result.constraint, result.subspace)
        ] = (result.context_size, result.skyline_size)
    return expected


def store_segments(store):
    return {
        key: {
            pair: (entry.context_size, entry.skyline_size)
            for pair, entry in segment.entries.items()
        }
        for key, segment in store._segments.items()
        if segment.entries
    }


def drive(engine, store, ops):
    """Feed interleaved arrivals/deletions the way NewsFeed and the
    server do: per-arrival event fold, then a repair pass."""
    live = []
    for op in ops:
        if op is True:
            if not live:
                continue
            removed = engine.delete(live.pop(0))
            store.note_retracted(removed)
            store.repair(engine)
        else:
            factset = engine.facts_for(op)
            live.append(factset.record.tid)
            store.apply_event(factset.record, factset)
            store.repair(engine)
    return live


class TestMaterializedParity:
    @settings(max_examples=25, deadline=None)
    @given(op_strategy)
    def test_single_engine_parity(self, ops):
        engine = open_engine(make_spec())
        store = FeedStore.for_engine(engine)
        store.attach(engine)
        drive(engine, store, ops)
        assert store_segments(store) == oracle_segments(engine, store)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(row_strategy, min_size=1, max_size=14))
    def test_windowed_parity(self, rows):
        """Window evictions never surface as explicit deletes — the
        retraction listener hook must still keep standings exact."""
        engine = open_engine(make_spec(window=4))
        store = FeedStore.for_engine(engine)
        store.attach(engine)
        for row in rows:
            factset = engine.facts_for(row)
            store.apply_event(factset.record, factset)
            store.repair(engine)
        assert store_segments(store) == oracle_segments(engine, store)

    @settings(max_examples=10, deadline=None)
    @given(op_strategy)
    def test_sharded_parity(self, ops):
        engine = open_engine(
            make_spec(
                algorithm="svec",
                sharding=ShardingSpec(workers=2, mode="serial"),
            )
        )
        try:
            store = FeedStore.for_engine(engine)
            store.attach(engine)
            drive(engine, store, ops)
            assert store_segments(store) == oracle_segments(engine, store)
        finally:
            engine.close()

    @settings(max_examples=15, deadline=None)
    @given(op_strategy)
    def test_rebuild_equals_incremental(self, ops):
        engine = open_engine(make_spec())
        store = FeedStore.for_engine(engine)
        store.attach(engine)
        drive(engine, store, ops)
        fresh = FeedStore.for_engine(engine)
        fresh.rebuild(engine)
        assert store_segments(store) == store_segments(fresh)

    def test_ranked_read_matches_batch_topk(self):
        """entries_ranked under τ/top-k == the oracle ranked the same
        way (ties at the cut kept, like ``query().batch``)."""
        engine = open_engine(make_spec(feeds=FeedSpec(group_by=("d0",))))
        store = FeedStore.for_engine(engine)
        store.attach(engine)
        rows = [
            {"d0": d0, "d1": d1, "m0": m0, "m1": m1}
            for d0, d1, m0, m1 in [
                ("a", "x", 3, 1), ("a", "y", 1, 3), ("b", "x", 2, 2),
                ("a", "x", 4, 0), ("b", "y", 0, 4), ("a", "y", 2, 2),
            ]
        ]
        drive(engine, store, rows)
        for key in store.segment_keys():
            expected = oracle_segments(engine, store).get(key, {})
            for top_k, tau in [(None, None), (3, None), (None, 1.5), (2, 1.0)]:
                got = store.entries_ranked(key, top_k=top_k, tau=tau)
                standings = sorted(
                    (
                        (ctx / sky, pair)
                        for pair, (ctx, sky) in expected.items()
                    ),
                    reverse=True,
                    key=lambda item: item[0],
                )
                if tau is not None:
                    standings = [s for s in standings if s[0] >= tau]
                if top_k is not None and len(standings) > top_k:
                    cutoff = standings[top_k - 1][0]
                    standings = [
                        s
                        for i, s in enumerate(standings)
                        if i < top_k or s[0] == cutoff
                    ]
                assert sorted(e.prominence for e in got) == sorted(
                    s[0] for s in standings
                ), (key, top_k, tau)


class TestBoundedMemory:
    def test_per_segment_cap_evicts_lowest(self):
        engine = open_engine(
            make_spec(feeds=FeedSpec(group_by=("d0",), max_entries=4))
        )
        store = FeedStore.for_engine(engine)
        store.attach(engine)
        rows = [
            {"d0": "a", "d1": f"v{i}", "m0": i % 5, "m1": (i * 3) % 7}
            for i in range(12)
        ]
        drive(engine, store, rows)
        for key, segment in store._segments.items():
            assert len(segment.entries) <= 4, key
        assert store.stats()["evicted"] > 0
        key = store.segment_keys()[0]
        page = store.read(key)
        assert page["truncated"] > 0
        # The entries kept are the top-ranked ones.
        kept = store.entries_ranked(key)
        assert all(
            kept[i].prominence >= kept[i + 1].prominence
            for i in range(len(kept) - 1)
        )


class TestCursorPagination:
    def _loaded_store(self):
        engine = open_engine(make_spec(feeds=FeedSpec()))
        store = FeedStore.for_engine(engine)
        store.attach(engine)
        rows = [
            {"d0": f"a{i % 4}", "d1": f"b{i % 3}", "m0": i % 5, "m1": (i * 2) % 5}
            for i in range(10)
        ]
        drive(engine, store, rows)
        return engine, store

    def test_pages_tile_the_feed(self):
        _, store = self._loaded_store()
        key = store.segment_keys()[0]
        full = [
            (e.constraint, e.subspace) for e in store.entries_ranked(key)
        ]
        seen = []
        cursor = None
        while True:
            page = store.read(key, cursor=cursor, limit=3)
            seen.extend(
                (tuple(e["constraint"].items()), tuple(e["measures"]))
                for e in page["entries"]
            )
            if page["next_cursor"] is None:
                break
            cursor = page["next_cursor"]
        assert len(seen) == len(full) == page["total"]
        assert len(set(seen)) == len(seen)

    def test_stale_cursor_restarts(self):
        engine, store = self._loaded_store()
        key = store.segment_keys()[0]
        page = store.read(key, limit=2)
        cursor = page["next_cursor"]
        factset = engine.facts_for({"d0": "zz", "d1": "zz", "m0": 4, "m1": 4})
        store.apply_event(factset.record, factset)
        follow = store.read(key, cursor=cursor, limit=2)
        if follow["version"] != page["version"]:
            assert follow["restarted"] is True
            assert follow["offset"] == 0

    def test_read_errors(self):
        _, store = self._loaded_store()
        key = store.segment_keys()[0]
        assert store.read("no-such-segment") is None
        with pytest.raises(ValueError):
            store.read(key, cursor="not-a-cursor")
        with pytest.raises(ValueError):
            store.read(key, limit=0)


class TestSidecar:
    def test_roundtrip_restores_standings(self, tmp_path):
        engine = open_engine(make_spec())
        store = FeedStore.for_engine(engine)
        store.attach(engine)
        drive(
            engine,
            store,
            [
                {"d0": "a", "d1": "x", "m0": 1, "m1": 2},
                {"d0": "b", "d1": "y", "m0": 3, "m1": 0},
                True,
                {"d0": "a", "d1": "y", "m0": 2, "m1": 2},
            ],
        )
        path = str(tmp_path / "feeds.json")
        assert store.save_sidecar(path, engine_version(engine))
        fresh = FeedStore.for_engine(engine)
        assert fresh.load_sidecar(path, engine)
        assert store_segments(fresh) == store_segments(store)

    def test_stale_stamp_rejected(self, tmp_path):
        engine = open_engine(make_spec())
        store = FeedStore.for_engine(engine)
        store.attach(engine)
        factset = engine.facts_for({"d0": "a", "d1": "x", "m0": 1, "m1": 2})
        store.apply_event(factset.record, factset)
        path = str(tmp_path / "feeds.json")
        assert store.save_sidecar(path, engine_version(engine))
        engine.facts_for({"d0": "b", "d1": "y", "m0": 2, "m1": 1})
        fresh = FeedStore.for_engine(engine)
        assert not fresh.load_sidecar(path, engine)

    def test_corrupt_sidecar_rejected(self, tmp_path):
        engine = open_engine(make_spec())
        store = FeedStore.for_engine(engine)
        path = str(tmp_path / "feeds.json")
        path_obj = tmp_path / "feeds.json"
        path_obj.write_text("{not json")
        assert not store.load_sidecar(path, engine)
        assert not store.load_sidecar(str(tmp_path / "missing.json"), engine)


class TestServerIntegration:
    def test_server_feeds_track_engine(self):
        rows = [
            {"d0": f"a{i % 3}", "d1": f"b{i % 2}", "m0": i % 5, "m1": (7 - i) % 5}
            for i in range(20)
        ]

        async def run():
            engine = open_engine(make_spec())
            server = StreamServer(engine, batch_max=4, batch_window=0.001)
            await server.start()
            await server.ingest_many(rows)
            await server.drain()
            await server.delete(0)
            await server.delete(3)
            await server.drain()
            await server.stop()
            return engine, server

        engine, server = asyncio.run(run())
        assert server.feeds is not None
        assert store_segments(server.feeds) == oracle_segments(
            engine, server.feeds
        )
        snap = server.stats_snapshot()
        assert snap["feeds"]["segments"] == len(server.feeds.segment_keys())
        assert snap["feeds"]["lag"] == 0
        assert snap["feeds"]["repairs"] >= 2

    def test_checkpoint_sidecar_roundtrip(self, tmp_path):
        rows = [
            {"d0": f"a{i % 2}", "d1": "x", "m0": i % 4, "m1": (i * 2) % 4}
            for i in range(8)
        ]
        path = str(tmp_path / "snap.json")

        async def serve(engine, replay):
            server = StreamServer(engine, checkpoint_path=path)
            await server.start()
            if replay:
                await server.ingest_many(rows)
                await server.drain()
            await server.stop()  # final checkpoint writes the sidecar
            return server

        engine = open_engine(make_spec())
        server = asyncio.run(serve(engine, True))
        saved = store_segments(server.feeds)

        from repro.extensions.snapshot import load_engine

        restored = load_engine(path)
        server2 = asyncio.run(serve(restored, False))
        assert store_segments(server2.feeds) == saved
        # Restore really came from the sidecar, not a rebuild: the
        # store's arrival counter survived.
        assert server2.feeds.applied_arrivals == server.feeds.applied_arrivals


class TestFeedSpecValidation:
    def test_roundtrip(self):
        spec = make_spec(
            feeds=FeedSpec(
                group_by=("d0",), top_k=7, tau=1.5,
                split_subspaces=True, max_entries=99,
            )
        )
        assert EngineSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            FeedSpec(top_k=0)
        with pytest.raises(ValueError):
            FeedSpec(tau=0.5)
        with pytest.raises(ValueError):
            FeedSpec(max_entries=0)
        with pytest.raises(ValueError):
            FeedSpec(group_by=("d0", "d0"))

    def test_feeds_requires_score(self):
        with pytest.raises(ValueError):
            make_spec(score=False)

    def test_group_by_must_be_discovery_dims(self):
        with pytest.raises(ValueError):
            make_spec(feeds=FeedSpec(group_by=("nope",)))


class TestNewsFeedComposition:
    def test_feed_serves_materialized_state(self):
        from repro.reporting.feed import NewsFeed

        feed = NewsFeed(SCHEMA, tau=2.0)
        rows = [
            {"d0": "a", "d1": "x", "m0": 3, "m1": 1},
            {"d0": "a", "d1": "y", "m0": 1, "m1": 3},
            {"d0": "b", "d1": "x", "m0": 2, "m1": 2},
        ]
        feed.run(rows)
        assert store_segments(feed.store) == oracle_segments(
            feed.engine, feed.store
        )
        standings = feed.feed()
        assert standings == [
            e.to_json_dict(feed.store.schema)
            for e in feed.store.entries_ranked(feed.store.segment_keys()[0])
        ]

    def test_windowed_newsfeed_stays_exact(self):
        from repro.reporting.feed import NewsFeed

        engine = open_engine(make_spec(window=3, feeds=FeedSpec(group_by=("d0",))))
        feed = NewsFeed(SCHEMA, engine=engine)
        for i in range(9):
            feed.push(
                {"d0": f"a{i % 2}", "d1": "x", "m0": i % 4, "m1": (5 - i) % 4}
            )
        assert store_segments(feed.store) == oracle_segments(engine, feed.store)

    def test_rescan_warns_once_and_matches_feed(self):
        import repro.reporting.feed as feed_mod

        feed = feed_mod.NewsFeed(SCHEMA, tau=2.0)
        feed.run(
            [
                {"d0": "a", "d1": "x", "m0": 3, "m1": 1},
                {"d0": "b", "d1": "y", "m0": 1, "m1": 3},
            ]
        )
        feed_mod._RESCAN_WARNED = False
        try:
            with pytest.warns(DeprecationWarning):
                rescanned = feed.rescan()
            assert rescanned == feed.feed()
            # One-shot: the second call must stay silent.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                feed.rescan()
        finally:
            feed_mod._RESCAN_WARNED = True
