"""Tests for narration and the streaming news feed."""

import pytest

from repro import Constraint, Record, TableSchema
from repro.core.facts import SituationalFact
from repro.reporting import NewsFeed, narrate, narrate_all
from repro.reporting.narrate import context_phrase, measure_phrase, subject_phrase

SCHEMA = TableSchema(("player", "team"), ("points", "rebounds"))


def fact(constraint_values, subspace, context=100, skyline=1):
    record = Record(0, ("Wesley", "Celtics"), (54.0, 10.0), (54, 10))
    return SituationalFact(
        record, Constraint(constraint_values), subspace, context, skyline
    )


class TestPhrases:
    def test_measure_phrase_single(self):
        f = fact(("Wesley", None), SCHEMA.measure_mask(("points",)))
        assert measure_phrase(f, SCHEMA) == "54 points"

    def test_measure_phrase_multiple_uses_and(self):
        f = fact(("Wesley", None), SCHEMA.full_measure_mask)
        assert measure_phrase(f, SCHEMA) == "54 points and 10 rebounds"

    def test_context_phrase(self):
        f = fact((None, "Celtics"), 0b1)
        assert context_phrase(f, SCHEMA) == "records with team=Celtics"

    def test_context_phrase_top(self):
        f = fact((None, None), 0b1)
        assert context_phrase(f, SCHEMA) == "all records"

    def test_subject_is_entity_attribute(self):
        """The lead entity is the record's first dimension (the entity
        column by schema convention), not the constraint binding."""
        f = fact((None, "Celtics"), 0b1)
        assert subject_phrase(f, SCHEMA) == "Wesley"

    def test_subject_with_top_constraint(self):
        f = fact((None, None), 0b1)
        assert subject_phrase(f, SCHEMA) == "Wesley"


class TestNarrate:
    def test_full_sentence(self):
        f = fact(("Wesley", None), SCHEMA.measure_mask(("points",)), 1203, 1)
        text = narrate(f, SCHEMA)
        assert "Wesley" in text
        assert "54 points" in text
        assert "1,203 on record" in text
        assert "prominence 1,203" in text

    def test_unscored_fact_narrates_without_numbers(self):
        f = fact(("Wesley", None), 0b1, context=None, skyline=None)
        text = narrate(f, SCHEMA)
        assert "Wesley" in text and "prominence" not in text

    def test_narrate_all_limits(self):
        facts = [fact(("Wesley", None), 0b1)] * 5
        digest = narrate_all(facts, SCHEMA, limit=2)
        assert digest.count("\n") == 1


class TestNewsFeed:
    def test_feed_emits_headlines_above_tau(self):
        feed = NewsFeed(SCHEMA, tau=3.0, max_bound_dims=1, max_measure_dims=2)
        rows = [
            {"player": f"P{i}", "team": "T", "points": i % 3, "rebounds": i % 2}
            for i in range(12)
        ]
        # A record-shattering arrival after a dozen mediocre ones.
        rows.append({"player": "Star", "team": "T", "points": 99, "rebounds": 99})
        headlines = feed.run(rows)
        assert headlines, "the star performance must make the news"
        last = headlines[-1]
        assert last.fact.prominence >= 3.0
        assert "Star" in last.text or "T" in last.text

    def test_quiet_stream_stays_quiet(self):
        feed = NewsFeed(SCHEMA, tau=1e6)
        rows = [
            {"player": "A", "team": "T", "points": i, "rebounds": i}
            for i in range(10)
        ]
        assert feed.run(rows) == []
        assert len(feed) == 0

    def test_push_returns_only_new_headlines(self):
        feed = NewsFeed(SCHEMA, tau=2.0, max_bound_dims=1, max_measure_dims=1)
        for i in range(6):
            feed.push({"player": "A", "team": "T", "points": 1, "rebounds": 1})
        out = feed.push({"player": "B", "team": "T", "points": 50, "rebounds": 50})
        assert all(h.tuple_index == 6 for h in out)
