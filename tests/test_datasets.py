"""Tests for the dataset substrates and the CSV loader."""

import pytest

from repro import SchemaError
from repro.datasets import (
    ANTICORRELATED,
    CORRELATED,
    INDEPENDENT,
    dimension_space,
    generate_nba,
    generate_synthetic,
    generate_weather,
    load_rows,
    measure_space,
    nba_rows,
    nba_schema,
    save_rows,
    synthetic_rows,
    synthetic_schema,
    weather_rows,
    weather_schema,
)


class TestNBA:
    def test_row_count(self):
        assert len(list(generate_nba(137))) == 137

    def test_deterministic_for_seed(self):
        assert list(generate_nba(50, seed=3)) == list(generate_nba(50, seed=3))

    def test_different_seed_differs(self):
        assert list(generate_nba(50, seed=3)) != list(generate_nba(50, seed=4))

    def test_rows_have_all_attributes(self):
        (row,) = list(generate_nba(1))
        for attr in dimension_space(8) + measure_space(7):
            assert attr in row

    def test_measures_non_negative_ints(self):
        for row in generate_nba(200):
            for m in measure_space(7):
                assert isinstance(row[m], int) and row[m] >= 0

    def test_seasons_are_chronological(self):
        seasons = [row["season"] for row in generate_nba(300)]
        assert seasons == sorted(seasons)

    def test_projection_matches_schema(self):
        schema = nba_schema(4, 5)
        rows = nba_rows(10, d=4, m=5)
        for row in rows:
            assert set(row) == set(schema.dimensions) | set(schema.measures)

    def test_paper_parameter_tables(self):
        assert dimension_space(5) == ("player", "season", "month", "team", "opp_team")
        assert measure_space(4) == ("points", "rebounds", "assists", "blocks")
        with pytest.raises(ValueError):
            dimension_space(3)
        with pytest.raises(ValueError):
            measure_space(9)

    def test_min_preferences_on_fouls_turnovers(self):
        schema = nba_schema(5, 7)
        assert schema.preference("fouls") == "min"
        assert schema.preference("turnovers") == "min"
        assert schema.preference("points") == "max"


class TestWeather:
    def test_row_count_and_determinism(self):
        rows = list(generate_weather(77, seed=1))
        assert len(rows) == 77
        assert rows == list(generate_weather(77, seed=1))

    def test_schema_projection(self):
        schema = weather_schema(5, 7)
        for row in weather_rows(5, d=5, m=7):
            assert set(row) == set(schema.dimensions) | set(schema.measures)

    def test_all_measures_max_preferred(self):
        schema = weather_schema(7, 7)
        assert all(schema.preference(m) == "max" for m in schema.measures)

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            weather_schema(0, 7)
        with pytest.raises(ValueError):
            weather_schema(5, 99)

    def test_months_progress_through_year(self):
        months = [r["month"] for r in generate_weather(240)]
        assert months[0] == "Dec"
        assert len(set(months)) == 12


class TestSynthetic:
    def test_distributions(self):
        for dist in (INDEPENDENT, CORRELATED, ANTICORRELATED):
            rows = synthetic_rows(30, 2, 3, dist)
            assert len(rows) == 30
            for row in rows:
                assert set(row) == {"d0", "d1", "m0", "m1", "m2"}

    def test_bad_distribution_rejected(self):
        with pytest.raises(ValueError):
            synthetic_rows(5, 2, 2, "zipfian")

    def test_cardinalities_respected(self):
        rows = synthetic_rows(100, 2, 1, cardinalities=[2, 5])
        assert len({r["d0"] for r in rows}) <= 2
        assert len({r["d1"] for r in rows}) <= 5

    def test_cardinality_length_mismatch(self):
        with pytest.raises(ValueError):
            synthetic_rows(5, 2, 1, cardinalities=[2])

    def test_correlated_has_smaller_skyline_than_anticorrelated(self):
        """Sanity: correlation shrinks skylines, anti-correlation grows
        them (the classic skyline-benchmark property)."""
        from repro.core.record import Table
        from repro.core.skyline import skyline_bnl

        schema = synthetic_schema(1, 4)
        sizes = {}
        for dist in (CORRELATED, ANTICORRELATED):
            table = Table(schema)
            for row in synthetic_rows(400, 1, 4, dist, seed=42):
                table.append(row)
            sizes[dist] = len(skyline_bnl(list(table), 0b1111))
        assert sizes[CORRELATED] < sizes[ANTICORRELATED]


class TestLoader:
    def test_roundtrip(self, tmp_path):
        schema = nba_schema(4, 4)
        rows = nba_rows(20, d=4, m=4)
        path = str(tmp_path / "rows.csv")
        save_rows(path, schema, rows)
        back = list(load_rows(path, schema))
        assert len(back) == 20
        assert back[0] == rows[0]

    def test_float_measures_preserved(self, tmp_path):
        schema = weather_schema(2, 2)
        rows = weather_rows(5, d=2, m=2)
        path = str(tmp_path / "w.csv")
        save_rows(path, schema, rows)
        back = list(load_rows(path, schema))
        assert back[0]["wind_speed_day"] == pytest.approx(rows[0]["wind_speed_day"])

    def test_missing_column_raises(self, tmp_path):
        path = str(tmp_path / "bad.csv")
        with open(path, "w") as fh:
            fh.write("player,points\nA,3\n")
        schema = nba_schema(4, 4)
        with pytest.raises(SchemaError, match="missing columns"):
            list(load_rows(path, schema))
