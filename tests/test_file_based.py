"""Tests for the file-based algorithm variants (§VI-C)."""

import pytest

from repro import TableSchema, make_algorithm
from repro.algorithms import FSBottomUp, FSTopDown
from repro.datasets import synthetic_rows, synthetic_schema


@pytest.fixture
def small_stream():
    return synthetic_rows(25, 2, 2, "independent", cardinalities=[3, 3], seed=9)


SCHEMA = synthetic_schema(2, 2)


class TestEquivalenceWithMemoryVariants:
    def test_fsbottomup_matches_sbottomup(self, small_stream, tmp_path):
        mem = make_algorithm("sbottomup", SCHEMA)
        fil = FSBottomUp(SCHEMA, directory=str(tmp_path / "bu"))
        expected = [fs.pairs for fs in mem.process_stream(small_stream)]
        got = [fs.pairs for fs in fil.process_stream(small_stream)]
        assert got == expected
        fil.close()

    def test_fstopdown_matches_stopdown(self, small_stream, tmp_path):
        mem = make_algorithm("stopdown", SCHEMA)
        fil = FSTopDown(SCHEMA, directory=str(tmp_path / "td"))
        expected = [fs.pairs for fs in mem.process_stream(small_stream)]
        got = [fs.pairs for fs in fil.process_stream(small_stream)]
        assert got == expected
        fil.close()

    def test_gamelog_example(self, gamelog_schema, gamelog_rows, tmp_path):
        mem = make_algorithm("bruteforce", gamelog_schema)
        fil = FSTopDown(gamelog_schema, directory=str(tmp_path))
        expected = [fs.pairs for fs in mem.process_stream(gamelog_rows)]
        got = [fs.pairs for fs in fil.process_stream(gamelog_rows)]
        assert got == expected
        fil.close()


class TestIOAccounting:
    def test_fstopdown_does_less_io_than_fsbottomup(self, tmp_path):
        """§VI-C: maximal-constraint storage touches far fewer files."""
        rows = synthetic_rows(60, 2, 2, "independent", cardinalities=[4, 4], seed=3)
        bu = FSBottomUp(SCHEMA, directory=str(tmp_path / "bu"))
        td = FSTopDown(SCHEMA, directory=str(tmp_path / "td"))
        bu.process_stream(rows)
        td.process_stream(rows)
        assert td.counters.file_writes < bu.counters.file_writes
        assert td.stored_tuple_count() <= bu.stored_tuple_count()
        bu.close()
        td.close()

    def test_registry_names(self):
        assert FSBottomUp.name == "fsbottomup"
        assert FSTopDown.name == "fstopdown"

    def test_store_survives_flush_cycles(self, tmp_path):
        rows = synthetic_rows(15, 2, 2, seed=2)
        algo = FSTopDown(SCHEMA, directory=str(tmp_path))
        algo.process_stream(rows)
        algo.store.flush()
        snapshot = {k: {r.tid for r in v} for k, v in algo.store.iter_pairs()}
        assert snapshot  # non-empty and readable back from disk
        algo.close()
