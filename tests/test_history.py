"""Tests for Elias-style historical framing ("first since ...")."""

import pytest

from repro import Constraint, Record, TableSchema
from repro.core.facts import SituationalFact
from repro.reporting.history import is_precedent, last_precedent, narrate_with_history

SCHEMA = TableSchema(("player", "month"), ("points", "rebounds"))


def rec(tid, player, month, points, rebounds):
    vals = (float(points), float(rebounds))
    return Record(tid, (player, month), vals, vals)


def fact_for(record, bindings, measures):
    return SituationalFact(
        record,
        Constraint.from_mapping(SCHEMA, bindings),
        SCHEMA.measure_mask(measures),
    )


class TestIsPrecedent:
    def test_equal_is_precedent(self):
        assert is_precedent(rec(0, "A", "Jan", 20, 10), rec(1, "B", "Jan", 20, 10), 0b11)

    def test_better_is_precedent(self):
        assert is_precedent(rec(0, "A", "Jan", 25, 12), rec(1, "B", "Jan", 20, 10), 0b11)

    def test_worse_on_one_axis_is_not(self):
        assert not is_precedent(rec(0, "A", "Jan", 25, 9), rec(1, "B", "Jan", 20, 10), 0b11)

    def test_subspace_restriction(self):
        # Worse on rebounds but rebounds outside the subspace.
        assert is_precedent(rec(0, "A", "Jan", 25, 0), rec(1, "B", "Jan", 20, 10), 0b01)


class TestLastPrecedent:
    def test_none_for_unprecedented(self):
        history = [rec(0, "A", "Jan", 5, 5)]
        f = fact_for(rec(1, "B", "Jan", 20, 10), {"month": "Jan"}, ("points",))
        assert last_precedent(f, history) is None

    def test_finds_most_recent_by_tid(self):
        history = [
            rec(0, "Old", "Jan", 30, 10),
            rec(1, "Mid", "Jan", 2, 2),
            rec(2, "New", "Jan", 25, 10),
        ]
        f = fact_for(rec(3, "B", "Jan", 20, 5), {"month": "Jan"}, ("points",))
        found = last_precedent(f, history)
        assert found is not None and found.dims[0] == "New"

    def test_respects_context(self):
        history = [rec(0, "A", "Feb", 30, 10)]  # wrong month
        f = fact_for(rec(1, "B", "Jan", 20, 10), {"month": "Jan"}, ("points",))
        assert last_precedent(f, history) is None

    def test_ignores_the_fact_tuple_itself(self):
        target = rec(1, "B", "Jan", 20, 10)
        f = fact_for(target, {"month": "Jan"}, ("points",))
        assert last_precedent(f, [target]) is None

    def test_time_attribute_ordering(self):
        history = [
            rec(0, "Late", "Mar", 30, 10),
            rec(1, "Early", "Feb", 30, 10),
        ]
        f = fact_for(rec(2, "B", None or "Jan", 20, 5), {}, ("points",))
        found = last_precedent(f, history, time_attribute=1)
        assert found is not None and found.dims[0] == "Late"


class TestNarrateWithHistory:
    def test_first_ever(self):
        history = [rec(0, "A", "Jan", 5, 5)]
        f = fact_for(rec(1, "B", "Jan", 20, 10), {"month": "Jan"}, ("points",))
        text = narrate_with_history(f, SCHEMA, history)
        assert "first ever" in text
        assert "B" in text

    def test_first_since_with_entity(self):
        history = [
            rec(0, "Schrempf", "Dec", 21, 11),
            rec(1, "Scrub", "Dec", 1, 1),
        ]
        f = fact_for(rec(2, "George", "Dec", 21, 11), {"month": "Dec"},
                     ("points", "rebounds"))
        text = narrate_with_history(f, SCHEMA, history)
        assert "since Schrempf" in text

    def test_first_since_with_when(self):
        history = [rec(0, "Schrempf", "Dec", 30, 12)]
        f = fact_for(rec(1, "George", "Feb", 21, 11), {}, ("points",))
        text = narrate_with_history(f, SCHEMA, history, when_attribute=1)
        assert "since Schrempf in Dec" in text
