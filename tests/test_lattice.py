"""Unit + property tests for the bitmask lattice machinery."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.lattice import (
    agreement_mask,
    children_of,
    is_submask,
    iter_masks_by_level,
    iter_submasks,
    iter_supermasks,
    masks_by_level,
    nonempty_subspaces,
    parents_of,
    popcount,
    submask_closure_table,
)

masks = st.integers(min_value=0, max_value=(1 << 6) - 1)


class TestSubmasks:
    def test_enumeration(self):
        assert sorted(iter_submasks(0b101)) == [0b000, 0b001, 0b100, 0b101]

    def test_zero(self):
        assert list(iter_submasks(0)) == [0]

    @given(masks)
    def test_count_is_power_of_two(self, m):
        assert sum(1 for _ in iter_submasks(m)) == 1 << popcount(m)

    @given(masks)
    def test_all_are_submasks(self, m):
        assert all(is_submask(s, m) for s in iter_submasks(m))


class TestSupermasks:
    def test_enumeration(self):
        assert sorted(iter_supermasks(0b001, 0b111)) == [0b001, 0b011, 0b101, 0b111]

    @given(masks, masks)
    def test_supermasks_within_universe(self, m, u):
        universe = m | u  # ensure m fits inside
        sups = list(iter_supermasks(m, universe))
        assert all(is_submask(m, s) and is_submask(s, universe) for s in sups)
        assert len(sups) == 1 << popcount(universe & ~m)


class TestNeighbours:
    def test_parents(self):
        assert sorted(parents_of(0b110)) == [0b010, 0b100]

    def test_children(self):
        assert sorted(children_of(0b001, 0b111)) == [0b011, 0b101]

    @given(masks)
    def test_parent_child_inverse(self, m):
        universe = (1 << 6) - 1
        for p in parents_of(m):
            assert m in set(children_of(p, universe))


class TestLevels:
    def test_level_order_ascending(self):
        seq = list(iter_masks_by_level(3))
        assert seq[0] == 0
        assert [popcount(m) for m in seq] == sorted(popcount(m) for m in seq)

    def test_level_order_descending(self):
        seq = list(iter_masks_by_level(3, ascending=False))
        assert seq[0] == 0b111

    def test_masks_by_level_partition(self):
        levels = masks_by_level(4)
        assert sum(len(level) for level in levels) == 16
        for k, level in enumerate(levels):
            assert all(popcount(m) == k for m in level)


class TestClosureTable:
    def test_small_table(self):
        table = submask_closure_table(2)
        # closure(0b11) covers masks {00, 01, 10, 11} → bits 0..3 set.
        assert table[0b11] == 0b1111
        assert table[0b01] == 0b0011
        assert table[0b00] == 0b0001

    @given(st.integers(min_value=0, max_value=(1 << 5) - 1))
    def test_matches_enumeration(self, m):
        table = submask_closure_table(5)
        expected = 0
        for s in iter_submasks(m):
            expected |= 1 << s
        assert table[m] == expected


class TestAgreement:
    def test_agreement_positions(self):
        assert agreement_mask(("a", "b", "c"), ("a", "x", "c")) == 0b101

    def test_no_agreement(self):
        assert agreement_mask(("a",), ("b",)) == 0

    @given(st.lists(st.sampled_from("ab"), min_size=1, max_size=6))
    def test_self_agreement_is_full(self, dims):
        assert agreement_mask(dims, dims) == (1 << len(dims)) - 1


class TestSubspaces:
    def test_nonempty_excludes_zero(self):
        subs = nonempty_subspaces(0b111)
        assert 0 not in subs
        assert len(subs) == 7

    def test_full_space_first(self):
        assert nonempty_subspaces(0b111)[0] == 0b111

    def test_max_size_cap(self):
        subs = nonempty_subspaces(0b111, max_size=2)
        assert all(popcount(m) <= 2 for m in subs)
        assert len(subs) == 6
