"""Unit tests for repro.core.record (Record + append-only Table)."""

import pytest

from repro import MIN, SchemaError, TableSchema
from repro.core.constraint import Constraint
from repro.core.record import Record, Table


@pytest.fixture
def schema():
    return TableSchema(("d1", "d2"), ("pts", "fouls"), {"fouls": MIN})


class TestAppend:
    def test_append_assigns_sequential_tids(self, schema):
        table = Table(schema)
        r0 = table.append({"d1": "a", "d2": "b", "pts": 5, "fouls": 2})
        r1 = table.append({"d1": "a", "d2": "c", "pts": 7, "fouls": 0})
        assert (r0.tid, r1.tid) == (0, 1)
        assert len(table) == 2

    def test_normalisation_flips_min_measures(self, schema):
        table = Table(schema)
        r = table.append({"d1": "a", "d2": "b", "pts": 5, "fouls": 2})
        assert r.raw == (5, 2)
        assert r.values == (5.0, -2.0)  # fouls is min-preferred

    def test_non_numeric_measure_raises(self, schema):
        table = Table(schema)
        with pytest.raises(SchemaError):
            table.append({"d1": "a", "d2": "b", "pts": "many", "fouls": 1})

    def test_append_record_reassigns_tid(self, schema):
        table = Table(schema)
        table.append({"d1": "a", "d2": "b", "pts": 1, "fouls": 1})
        foreign = Record(99, ("x", "y"), (1.0, -1.0), (1, 1))
        stored = table.append(foreign)
        assert stored.tid == 1

    def test_make_record_does_not_append(self, schema):
        table = Table(schema)
        rec = table.make_record({"d1": "a", "d2": "b", "pts": 1, "fouls": 1})
        assert rec.tid == 0
        assert len(table) == 0


class TestAccess:
    def test_iteration_and_indexing(self, schema):
        table = Table(schema)
        table.append({"d1": "a", "d2": "b", "pts": 1, "fouls": 1})
        table.append({"d1": "c", "d2": "d", "pts": 2, "fouls": 2})
        assert [r.dims[0] for r in table] == ["a", "c"]
        assert table[1].dims == ("c", "d")
        assert len(table.records) == 2

    def test_sigma_predicate(self, schema):
        table = Table(schema)
        table.append({"d1": "a", "d2": "b", "pts": 1, "fouls": 1})
        table.append({"d1": "a", "d2": "c", "pts": 2, "fouls": 2})
        out = table.sigma(lambda r: r.dims[1] == "c")
        assert [r.tid for r in out] == [1]

    def test_select_constraint(self, schema):
        table = Table(schema)
        table.append({"d1": "a", "d2": "b", "pts": 1, "fouls": 1})
        table.append({"d1": "a", "d2": "c", "pts": 2, "fouls": 2})
        got = table.select_constraint(Constraint(("a", None)))
        assert [r.tid for r in got] == [0, 1]
        got = table.select_constraint(Constraint(("a", "b")))
        assert [r.tid for r in got] == [0]

    def test_record_as_dict(self, schema):
        table = Table(schema)
        r = table.append({"d1": "a", "d2": "b", "pts": 5, "fouls": 2})
        assert r.as_dict(schema) == {"d1": "a", "d2": "b", "pts": 5, "fouls": 2}


class TestDelete:
    def test_delete_removes_by_tid(self, schema):
        table = Table(schema)
        table.append({"d1": "a", "d2": "b", "pts": 1, "fouls": 1})
        table.append({"d1": "c", "d2": "d", "pts": 2, "fouls": 2})
        removed = table.delete(0)
        assert removed.dims == ("a", "b")
        assert [r.tid for r in table] == [1]

    def test_delete_missing_raises(self, schema):
        table = Table(schema)
        with pytest.raises(KeyError):
            table.delete(5)

    def test_tids_keep_increasing_after_delete(self, schema):
        table = Table(schema)
        table.append({"d1": "a", "d2": "b", "pts": 1, "fouls": 1})
        table.delete(0)
        r = table.append({"d1": "x", "d2": "y", "pts": 1, "fouls": 1})
        assert r.tid == 1
