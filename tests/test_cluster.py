"""Remote shard cluster: wire protocol, replica sets, placement.

The contract under test mirrors ``tests/test_sharding.py``: a
``mode="remote"`` :class:`ShardedDiscoverer` driving socket workers
must be *property-identical* to the unsharded ``svec`` engine — same
facts, same scores, same emission order, same op-counter totals —
including deletion-interleaved and None-dimension streams, across
replica failover, replica join, and placement rebalances.  Workers run
in-process on ephemeral loopback ports (real sockets, real frames; the
subprocess/SIGKILL variants live in ``tests/test_fault_tolerance.py``).
"""

from __future__ import annotations

import pickle
import random
import socket
import struct
import zlib
from contextlib import contextmanager

import pytest

from repro import FactDiscoverer, TableSchema
from repro.api import EngineSpec, ShardingSpec, open_engine
from repro.core.config import DiscoveryConfig
from repro.core.constraint import Constraint
from repro.metrics.service import ServiceStats
from repro.service.cluster import (
    Move,
    PlacementModel,
    ReplicaSet,
    cluster_status,
    shard_sort_key,
)
from repro.service.remote import (
    PROTOCOL_VERSION,
    FrameError,
    RemoteWorker,
    SocketWorkerServer,
    _FRAME,
    parse_address,
    probe_worker,
    recv_msg,
    send_msg,
)
from repro.service.sharding import ShardedDiscoverer, partition_subspaces
from repro.service.supervisor import WorkerCrashed, WorkerGaveUp

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))


def make_rows(n, seed=0, none_frac=0.0):
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        row = {
            "d0": f"a{rng.randrange(3)}",
            "d1": f"b{rng.randrange(2)}",
            "m0": rng.randrange(6),
            "m1": rng.randrange(6),
        }
        if none_frac and rng.random() < none_frac:
            row[f"d{rng.randrange(2)}"] = None
        rows.append(row)
    return rows


def fact_key(fact):
    return (fact.constraint.values, fact.subspace, fact.prominence)


def emitted(fact_sets):
    return [[fact_key(f) for f in fs] for fs in fact_sets]


@contextmanager
def local_cluster(replicas_per_shard):
    """Spin up in-process socket workers; yields (placement_map, servers
    keyed like the map)."""
    servers = {}
    try:
        remote = {}
        for shard, n_replicas in enumerate(replicas_per_shard):
            pool = [SocketWorkerServer().start() for _ in range(n_replicas)]
            servers[str(shard)] = pool
            remote[str(shard)] = [s.address for s in pool]
        yield remote, servers
    finally:
        for pool in servers.values():
            for server in pool:
                server.stop()


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestFrames:
    def test_roundtrip(self):
        a, b = socket.socketpair()
        try:
            payload = [{"d0": "x", "m0": 1, "d1": None}, ("t", 2.5)]
            send_msg(a, "rows", payload)
            assert recv_msg(b) == ("rows", payload)
        finally:
            a.close()
            b.close()

    def test_crc_mismatch_rejected(self):
        a, b = socket.socketpair()
        try:
            body = pickle.dumps(("op", 1))
            a.sendall(_FRAME.pack(len(body), zlib.crc32(body) ^ 0xFF) + body)
            with pytest.raises(FrameError, match="CRC"):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_truncated_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            body = pickle.dumps(("op", 1))
            a.sendall(
                _FRAME.pack(len(body) + 7, zlib.crc32(body) & 0xFFFFFFFF)
                + body
            )
            a.close()
            with pytest.raises(FrameError, match="mid-frame"):
                recv_msg(b)
        finally:
            b.close()

    def test_implausible_length_rejected_before_allocating(self):
        a, b = socket.socketpair()
        try:
            a.sendall(_FRAME.pack(2**31, 0))
            with pytest.raises(FrameError, match="exceeds"):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_parse_address(self):
        assert parse_address("10.0.0.5:7711") == ("10.0.0.5", 7711)
        with pytest.raises(ValueError):
            parse_address("no-port")
        with pytest.raises(ValueError):
            parse_address(":123")


class TestHandshake:
    def test_version_mismatch_is_refused(self):
        server = SocketWorkerServer().start()
        try:
            sock = socket.create_connection(
                parse_address(server.address), timeout=5
            )
            try:
                send_msg(sock, "hello", {"version": PROTOCOL_VERSION + 1})
                op, payload = recv_msg(sock)
                assert op == "error"
                assert "version" in payload
            finally:
                sock.close()
        finally:
            server.stop()

    def test_handshake_reports_version_and_pid(self):
        server = SocketWorkerServer().start()
        try:
            sock = socket.create_connection(
                parse_address(server.address), timeout=5
            )
            try:
                send_msg(sock, "hello", {"version": PROTOCOL_VERSION})
                op, payload = recv_msg(sock)
                assert op == "hello"
                assert payload["version"] == PROTOCOL_VERSION
                assert payload["configured"] is False
            finally:
                sock.close()
        finally:
            server.stop()

    def test_op_before_configure_is_an_error_reply(self):
        server = SocketWorkerServer().start()
        try:
            worker = RemoteWorker(0, server.address, op_timeout=5)
            with pytest.raises(WorkerCrashed, match="not configured"):
                worker.counters()
            worker.close()
        finally:
            server.stop()

    def test_unreachable_address_raises_worker_crashed(self):
        # Grab a port that is then closed again.
        probe = socket.create_server(("127.0.0.1", 0))
        address = "127.0.0.1:%d" % probe.getsockname()[1]
        probe.close()
        with pytest.raises(WorkerCrashed, match="cannot connect"):
            RemoteWorker(0, address, op_timeout=1, connect_timeout=1)

    def test_probe_worker_stats(self):
        server = SocketWorkerServer().start()
        try:
            stats = probe_worker(server.address, timeout=5)
            assert stats["version"] == PROTOCOL_VERSION
            assert stats["configured"] is False
            assert stats["rows"] == 0
            assert stats["rtt_seconds"] >= 0
        finally:
            server.stop()


# ----------------------------------------------------------------------
# Spec plumbing
# ----------------------------------------------------------------------
class TestRemoteSpec:
    def test_remote_requires_remote_mode(self):
        with pytest.raises(ValueError, match="mode='remote'"):
            ShardingSpec(workers=1, mode="process", remote={"0": ["h:1"]})

    def test_remote_mode_requires_map(self):
        with pytest.raises(ValueError, match="placement map"):
            ShardingSpec(workers=2, mode="remote")

    def test_worker_count_must_match_shards(self):
        with pytest.raises(ValueError, match="must equal"):
            ShardingSpec(workers=3, mode="remote", remote={"0": ["h:1"]})

    def test_addresses_validated(self):
        with pytest.raises(ValueError, match="not 'host:port'"):
            ShardingSpec(workers=1, mode="remote", remote={"0": ["nope"]})
        with pytest.raises(ValueError, match="at least one"):
            ShardingSpec(workers=1, mode="remote", remote={"0": []})

    def test_spec_json_roundtrip(self):
        spec = EngineSpec(
            SCHEMA,
            algorithm="svec",
            sharding=ShardingSpec(
                workers=2,
                mode="remote",
                remote={"0": ["127.0.0.1:7711"], "1": ["127.0.0.1:7712"]},
            ),
        )
        doc = spec.to_dict()
        assert doc["sharding"]["remote"] == {
            "0": ["127.0.0.1:7711"],
            "1": ["127.0.0.1:7712"],
        }
        assert EngineSpec.from_dict(doc).to_dict() == doc

    def test_engine_requires_map_in_remote_mode(self):
        with pytest.raises(ValueError, match="placement map"):
            ShardedDiscoverer(SCHEMA, mode="remote")

    def test_shard_sort_key_orders_numerically(self):
        assert sorted(["10", "2", "b", "a"], key=shard_sort_key) == [
            "2",
            "10",
            "a",
            "b",
        ]


# ----------------------------------------------------------------------
# Conformance: property-identical to unsharded svec
# ----------------------------------------------------------------------
class TestRemoteParity:
    def _assert_parity(self, rows, config=None, delete_seed=None):
        reference = FactDiscoverer(SCHEMA, algorithm="svec", config=config)
        with local_cluster([1, 1]) as (remote, _servers):
            engine = ShardedDiscoverer(
                SCHEMA, config, remote=remote, chunk_size=16
            )
            try:
                if delete_seed is None:
                    expected = emitted(reference.observe_many(rows))
                    got = emitted(engine.observe_many(rows))
                else:
                    rng = random.Random(delete_seed)
                    expected, got, live = [], [], []
                    for i, row in enumerate(rows):
                        expected.append([fact_key(f) for f in reference.observe(row)])
                        got.append([fact_key(f) for f in engine.observe(row)])
                        live.append(i)
                        if len(live) > 1 and rng.random() < 0.35:
                            victim = live.pop(rng.randrange(len(live)))
                            reference.delete(victim)
                            engine.delete(victim)
                assert got == expected
                assert (
                    engine.counters.snapshot()
                    == reference.counters.snapshot()
                )
                assert engine.fault_counters()["degraded"] == 0
            finally:
                engine.close()
                reference.close()

    def test_shared_stream_parity(self):
        self._assert_parity(make_rows(90, seed=1))

    def test_none_dimension_parity(self):
        self._assert_parity(make_rows(70, seed=2, none_frac=0.3))

    def test_deletion_interleaved_parity(self):
        self._assert_parity(make_rows(40, seed=3), delete_seed=7)

    @pytest.mark.parametrize(
        "config",
        [
            DiscoveryConfig(max_bound_dims=1),
            DiscoveryConfig(tau=2.0),
            DiscoveryConfig(top_k=2),
        ],
        ids=["dhat", "tau", "topk"],
    )
    def test_config_knob_parity(self, config):
        self._assert_parity(make_rows(50, seed=4), config=config)

    def test_open_engine_builds_remote_composition(self):
        rows = make_rows(40, seed=5)
        reference = FactDiscoverer(SCHEMA, algorithm="svec")
        expected = emitted(reference.observe_many(rows))
        with local_cluster([1, 1]) as (remote, _servers):
            spec = EngineSpec(
                SCHEMA,
                algorithm="svec",
                sharding=ShardingSpec(
                    workers=2, mode="remote", remote=remote
                ),
            )
            with open_engine(spec) as engine:
                assert engine.mode == "remote"
                assert emitted(engine.observe_many(rows)) == expected
                derived = engine.spec
                assert derived.sharding.mode == "remote"
                assert derived.sharding.remote == remote
        reference.close()

    def test_query_pushdown_parity(self):
        rows = make_rows(60, seed=6)
        reference = FactDiscoverer(SCHEMA, algorithm="svec")
        reference.facts_for_many(rows)
        with local_cluster([1, 2]) as (remote, _servers):
            engine = ShardedDiscoverer(SCHEMA, remote=remote, chunk_size=16)
            try:
                engine.facts_for_many(rows)
                ref_q = reference.query()
                eng_q = engine.query()
                for constraint in (
                    Constraint(("a0", None)),
                    Constraint((None, "b1")),
                    Constraint(("a1", "b0")),
                ):
                    for subspace in (1, 2, 3):
                        assert sorted(
                            r.tid for r in eng_q.skyline(constraint, subspace)
                        ) == sorted(
                            r.tid for r in ref_q.skyline(constraint, subspace)
                        )
                        assert sorted(
                            r.tid
                            for r in eng_q.skyband(constraint, subspace, 2)
                        ) == sorted(
                            r.tid
                            for r in ref_q.skyband(constraint, subspace, 2)
                        )
                        assert eng_q.prominence(
                            constraint, subspace
                        ) == ref_q.prominence(constraint, subspace)
                    assert eng_q.context_size(constraint) == ref_q.context_size(
                        constraint
                    )
            finally:
                engine.close()
                reference.close()


# ----------------------------------------------------------------------
# Replica sets: fan-out, failover, join
# ----------------------------------------------------------------------
class TestReplicaSets:
    def test_writes_reach_every_replica(self):
        rows = make_rows(48, seed=8)
        with local_cluster([2, 2]) as (remote, servers):
            engine = ShardedDiscoverer(SCHEMA, remote=remote, chunk_size=12)
            try:
                engine.observe_many(rows)
                for pool in servers.values():
                    applied = {server.rows_applied for server in pool}
                    assert applied == {len(rows)}
            finally:
                engine.close()

    def test_reads_round_robin_across_replicas(self):
        rows = make_rows(30, seed=9)
        with local_cluster([2]) as (remote, servers):
            engine = ShardedDiscoverer(SCHEMA, remote=remote)
            try:
                engine.facts_for_many(rows)
                for _ in range(4):
                    engine.counters  # noqa: B018 - round-robins reads
                counts = [
                    server.op_counts.get("counters", 0)
                    for server in servers["0"]
                ]
                assert all(count >= 1 for count in counts)
            finally:
                engine.close()

    def test_primary_loss_promotes_replica_mid_stream(self):
        rows = make_rows(80, seed=10)
        reference = FactDiscoverer(SCHEMA, algorithm="svec")
        expected = emitted(reference.observe_many(rows))
        with local_cluster([2, 1]) as (remote, _servers):
            engine = ShardedDiscoverer(SCHEMA, remote=remote, chunk_size=16)
            try:
                got = emitted(engine.observe_many(rows[:40]))
                # Sever the router's connection to shard 0's primary:
                # the next chunk fails over to the surviving replica,
                # which already holds identical state.
                engine._workers[0]._replicas[0].abandon()
                got += emitted(engine.observe_many(rows[40:]))
                assert got == expected
                assert (
                    engine.counters.snapshot()
                    == reference.counters.snapshot()
                )
                tallies = engine.fault_counters()
                assert tallies["replica_failovers"] >= 1
                assert tallies["degraded"] == 0
                assert len(engine._workers[0].replicas) == 1
            finally:
                engine.close()
                reference.close()

    def test_whole_set_loss_degrades_without_losing_facts(self):
        rows = make_rows(60, seed=11)
        reference = FactDiscoverer(SCHEMA, algorithm="svec")
        expected = emitted(reference.observe_many(rows))
        reference.delete(5)
        with local_cluster([1, 1]) as (remote, _servers):
            engine = ShardedDiscoverer(SCHEMA, remote=remote, chunk_size=16)
            try:
                got = emitted(engine.observe_many(rows[:32]))
                # Kill the only replica of shard 1: the set is lost and
                # the router must degrade to in-router execution.
                engine._workers[1]._replicas[0].abandon()
                got += emitted(engine.observe_many(rows[32:]))
                engine.delete(5)
                assert got == expected
                assert (
                    engine.counters.snapshot()
                    == reference.counters.snapshot()
                )
                assert engine.fault_counters()["degraded"] == 1
            finally:
                engine.close()
                reference.close()

    def test_replica_join_catches_up_by_reobserve(self):
        rows = make_rows(60, seed=12)
        reference = FactDiscoverer(SCHEMA, algorithm="svec")
        expected = emitted(reference.observe_many(rows))
        with local_cluster([1, 1]) as (remote, _servers):
            engine = ShardedDiscoverer(SCHEMA, remote=remote, chunk_size=16)
            recruit = SocketWorkerServer().start()
            try:
                got = emitted(engine.observe_many(rows[:36]))
                replica_set = engine._workers[0]
                replica_set.join(recruit.address)
                assert len(replica_set.replicas) == 2
                # The join replayed the committed prefix.
                assert recruit.rows_applied == 36
                got += emitted(engine.observe_many(rows[36:]))
                assert got == expected
                # Reads hit both replicas and agree (round-robin): two
                # consecutive counter reads land on different replicas.
                assert engine.counters.snapshot() == engine.counters.snapshot()
                assert (
                    engine.counters.snapshot()
                    == reference.counters.snapshot()
                )
            finally:
                engine.close()
                reference.close()
                recruit.stop()

    def test_heartbeat_reports_and_drops(self):
        with local_cluster([2]) as (remote, servers):
            engine = ShardedDiscoverer(SCHEMA, remote=remote)
            try:
                replica_set = engine._workers[0]
                beat = replica_set.heartbeat()
                assert len(beat) == 2
                assert all(rtt is not None for rtt in beat.values())
                victim = replica_set._replicas[0]
                victim.abandon()
                beat = replica_set.heartbeat()
                assert beat[victim.address] is None
                assert len(replica_set.replicas) == 1
            finally:
                engine.close()

    def test_fanout_scatters_reads_over_replicas(self):
        rows = make_rows(30, seed=13)
        with local_cluster([2]) as (remote, servers):
            engine = ShardedDiscoverer(SCHEMA, remote=remote)
            try:
                engine.facts_for_many(rows)
                replica_set = engine._workers[0]
                calls = [
                    (lambda w, s=s: w.request("skyline", (("a0", None), s)))
                    for s in (1, 2, 3)
                ] * 2
                results = replica_set.fanout(calls)
                assert len(results) == 6
                assert results[:3] == results[3:]
                probes = [
                    server.op_counts.get("skyline", 0)
                    for server in servers["0"]
                ]
                assert all(count >= 1 for count in probes)
            finally:
                engine.close()

    def test_replica_set_constructor_needs_one_reachable(self):
        probe = socket.create_server(("127.0.0.1", 0))
        dead = "127.0.0.1:%d" % probe.getsockname()[1]
        probe.close()
        spec = {
            "dimensions": ("d0", "d1"),
            "measures": ("m0", "m1"),
            "preferences": {},
            "config": {},
            "shard": [3],
            "score": True,
            "worker_index": 0,
        }
        with pytest.raises(WorkerGaveUp, match="no replica reachable"):
            ReplicaSet(0, [dead], spec, op_timeout=1)


# ----------------------------------------------------------------------
# Placement model + rebalance
# ----------------------------------------------------------------------
class TestPlacement:
    def test_cold_start_plans_nothing(self):
        model = PlacementModel()
        assert model.rebalance_plan([[7, 4], [1, 2, 3]], root_key=7) == []

    def test_unobserved_prior_matches_static_weights(self):
        model = PlacementModel(root_weight=2.0)
        assert model.unit_cost(0) == 1.0
        # Static prior: the root shard (weight 2) prices like 2 keys.
        assert model.price([[7], [1, 2]], root_key=7) == 2.0

    def test_skew_produces_improving_moves(self):
        model = PlacementModel(alpha=1.0)
        assignment = [[7], [1, 2, 3, 4]]
        # Shard 1 measured 4x slower per weighted key.
        model.observe(0, 100, 0.10, weight=2.0)
        model.observe(1, 100, 0.80, weight=4.0)
        before = model.price(assignment, root_key=7)
        moves = model.rebalance_plan(assignment, root_key=7)
        assert moves
        shards = [list(s) for s in assignment]
        for move in moves:
            assert move.key != 7  # the root never moves
            shards[move.src].remove(move.key)
            shards[move.dst].append(move.key)
        assert model.price(shards, root_key=7) < before
        assert all(shards), "no shard may be emptied"

    def test_ewma_tracks_recent_rate(self):
        model = PlacementModel(alpha=0.5)
        model.observe(0, 10, 1.0, weight=1.0)   # 0.1 s/row
        model.observe(0, 10, 3.0, weight=1.0)   # 0.3 s/row
        assert model.rate(0) == pytest.approx(0.2)
        snap = model.snapshot()
        assert snap["samples"] == 2
        assert snap["rows_observed"][0] == 20

    def test_weighted_partition_override(self):
        # Measured weights replace the static root prior.
        assert partition_subspaces([7, 1, 2, 4], 2, weights={7: 1.0}) == [
            [7, 2],
            [1, 4],
        ]
        # And the default stays byte-identical to the classic split.
        assert partition_subspaces([7, 1, 2, 4, 3], 2) == [[7, 4], [1, 2, 3]]

    def test_rebalance_applies_as_snapshot_handoff(self):
        rows = make_rows(90, seed=14)
        reference = FactDiscoverer(SCHEMA, algorithm="svec")
        expected = emitted(reference.observe_many(rows))
        with local_cluster([1, 1]) as (remote, servers):
            engine = ShardedDiscoverer(SCHEMA, remote=remote, chunk_size=16)
            try:
                got = emitted(engine.observe_many(rows[:48]))
                # Force measured skew: shard 1 (two node keys) looks
                # pathologically slow, so the model moves a key off it.
                engine.placement.observe(
                    0, 1000, 0.1, weight=engine._shard_weight(0)
                )
                engine.placement.observe(
                    1, 1000, 5.0, weight=engine._shard_weight(1)
                )
                before = [list(shard) for shard in engine.shards]
                moves = engine.rebalance(apply=True)
                assert moves
                assert engine.shards != before
                assert engine._shard_of == {
                    key: w
                    for w, shard in enumerate(engine.shards)
                    for key in shard
                }
                # The handoff rebuilt workers from the op log: the
                # stream continues output-identical to the oracle.
                got += emitted(engine.observe_many(rows[48:]))
                assert got == expected
                assert (
                    engine.counters.snapshot()
                    == reference.counters.snapshot()
                )
                assert engine.fault_counters()["degraded"] == 0
            finally:
                engine.close()
                reference.close()

    def test_rebalance_is_advisory_off_remote_mode(self):
        engine = ShardedDiscoverer(SCHEMA, n_workers=2, mode="serial")
        try:
            engine.facts_for_many(make_rows(20, seed=15))
            engine.placement.observe(
                0, 1000, 0.1, weight=engine._shard_weight(0)
            )
            engine.placement.observe(
                1, 1000, 5.0, weight=engine._shard_weight(1)
            )
            before = [list(shard) for shard in engine.shards]
            moves = engine.rebalance(apply=True)
            assert moves  # planned...
            assert engine.shards == before  # ...but not applied
        finally:
            engine.close()


# ----------------------------------------------------------------------
# Operator surface: shard stats + cluster status
# ----------------------------------------------------------------------
class TestOperatorSurface:
    def test_shard_stats_breakdown(self):
        rows = make_rows(40, seed=16)
        with local_cluster([2, 1]) as (remote, _servers):
            engine = ShardedDiscoverer(SCHEMA, remote=remote, chunk_size=16)
            try:
                engine.facts_for_many(rows)
                details = engine.shard_stats()
                assert [entry["shard"] for entry in details] == [0, 1]
                assert sum(entry["keys"] for entry in details) == 3
                assert [entry["root"] for entry in details] == [True, False]
                assert len(details[0]["replicas"]) == 2
                assert all(
                    entry["ewma_seconds_per_row"] > 0 for entry in details
                )
                stats = engine.stats()
                assert stats["shards"] == details
                assert stats["placement"]["samples"] > 0
            finally:
                engine.close()

    def test_service_stats_surfaces_shard_details(self):
        stats = ServiceStats()
        details = [{"shard": 0, "keys": 2, "busy_seconds": 0.5}]
        stats.note_shard_details(details)
        snap = stats.snapshot()
        assert snap["shards"] == details
        assert snap["replica_failovers"] == 0
        # Unsharded services keep the key out entirely.
        assert "shards" not in ServiceStats().snapshot()

    def test_cluster_status_reports_lag_and_health(self):
        rows = make_rows(30, seed=17)
        with local_cluster([2]) as (remote, servers):
            engine = ShardedDiscoverer(SCHEMA, remote=remote)
            engine.facts_for_many(rows)
            engine.close()  # workers keep their state
            straggler = SocketWorkerServer().start()
            probed = dict(remote)
            probed["0"] = probed["0"] + [straggler.address]
            report = cluster_status(probed, timeout=2)
            try:
                assert len(report) == 3
                by_replica = {row["replica"]: row for row in report}
                for address in remote["0"]:
                    assert by_replica[address]["alive"]
                    assert by_replica[address]["configured"]
                    assert by_replica[address]["rows"] == len(rows)
                    assert by_replica[address]["lag"] == 0
                # The empty recruit lags the pool by the full stream.
                assert by_replica[straggler.address]["lag"] == len(rows)
            finally:
                straggler.stop()

    def test_cluster_status_marks_dead_replicas(self):
        probe = socket.create_server(("127.0.0.1", 0))
        dead = "127.0.0.1:%d" % probe.getsockname()[1]
        probe.close()
        report = cluster_status({"0": [dead]}, timeout=1)
        assert len(report) == 1
        assert report[0]["alive"] is False
        assert report[0]["error"]
        assert report[0]["lag"] is None
