"""Structural properties every correct ``S_t`` must satisfy.

These are theorem-level checks derived from the paper's propositions,
tested on randomized streams independently of any specific algorithm
pairing (the equivalence suite already ties all algorithms together, so
we run the cheapest store-maintaining one).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DiscoveryConfig, FactDiscoverer, TableSchema, make_algorithm
from repro.core.constraint import Constraint, constraint_for_record
from repro.core.lattice import iter_supermasks

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))

row_strategy = st.fixed_dictionaries(
    {
        "d0": st.sampled_from(["a", "b", "c"]),
        "d1": st.sampled_from(["x", "y"]),
        "m0": st.integers(min_value=0, max_value=4),
        "m1": st.integers(min_value=0, max_value=4),
    }
)

streams = st.lists(row_strategy, min_size=1, max_size=16)


class TestSkylineConstraintStructure:
    @settings(max_examples=25, deadline=None)
    @given(streams)
    def test_facts_are_down_closed_per_subspace(self, rows):
        """Prop. 2 corollary: if t is a skyline tuple at (C, M), it is
        one at every more specific constraint it satisfies — S_t's
        constraint sets are down-closed within C^t."""
        algo = make_algorithm("sbottomup", SCHEMA)
        universe = (1 << SCHEMA.n_dimensions) - 1
        for row in rows:
            record = algo.table.make_record(row)
            facts = algo.process(record)
            by_subspace = {}
            for c, m in facts.pairs:
                by_subspace.setdefault(m, set()).add(c.bound_mask)
            for m, masks in by_subspace.items():
                for mask in masks:
                    for sup in iter_supermasks(mask, universe):
                        assert sup in masks, (mask, sup, m)

    @settings(max_examples=25, deadline=None)
    @given(streams)
    def test_bottom_constraint_in_st_unless_twin_dominated(self, rows):
        """⊥(C^t) = the tuple's own full constraint: t can only lose
        there to a tuple with identical dimensions."""
        algo = make_algorithm("sbottomup", SCHEMA)
        full = SCHEMA.full_measure_mask
        for row in rows:
            record = algo.table.make_record(row)
            history = list(algo.table)
            facts = algo.process(record)
            bottom = constraint_for_record(record, (1 << SCHEMA.n_dimensions) - 1)
            if (bottom, full) not in facts.pairs:
                from repro.core.dominance import dominates

                assert any(
                    other.dims == record.dims and dominates(other, record, full)
                    for other in history
                )

    @settings(max_examples=20, deadline=None)
    @given(streams)
    def test_subspace_count_consistency(self, rows):
        """For fixed C, the number of fact subspaces never exceeds the
        subspace universe, and every reported subspace is non-empty."""
        algo = make_algorithm("stopdown", SCHEMA)
        for facts in algo.process_stream(rows):
            for _c, m in facts.pairs:
                assert 0 < m <= SCHEMA.full_measure_mask


class TestProminenceProperties:
    @settings(max_examples=15, deadline=None)
    @given(streams)
    def test_prominence_at_least_one(self, rows):
        """Context contains at least its skyline: ratio ≥ 1."""
        engine = FactDiscoverer(SCHEMA, algorithm="bottomup")
        for row in rows:
            for fact in engine.facts_for(row):
                assert fact.prominence is not None
                assert fact.prominence >= 1.0

    @settings(max_examples=15, deadline=None)
    @given(streams)
    def test_context_size_monotone_in_generality(self, rows):
        """C1 ⊑ C2 ⇒ |σ_C1| ≤ |σ_C2| on reported facts."""
        engine = FactDiscoverer(SCHEMA, algorithm="bottomup")
        for row in rows:
            facts = list(engine.facts_for(row))
            by_pair = {(f.constraint, f.subspace): f for f in facts}
            for f in facts:
                for parent in f.constraint.parents():
                    parent_fact = by_pair.get((parent, f.subspace))
                    if parent_fact is not None:
                        assert parent_fact.context_size >= f.context_size

    @settings(max_examples=15, deadline=None)
    @given(streams)
    def test_new_tuple_counts_itself(self, rows):
        """Every fact's context includes the new tuple: size ≥ 1, and
        the skyline it is part of is non-empty."""
        engine = FactDiscoverer(SCHEMA, algorithm="stopdown")
        for row in rows:
            for fact in engine.facts_for(row):
                assert fact.context_size >= 1
                assert fact.skyline_size >= 1


class TestCapMonotonicity:
    @settings(max_examples=10, deadline=None)
    @given(streams)
    def test_tightening_caps_only_removes_facts(self, rows):
        """S_t under (d̂', m̂') ⊆ S_t under (d̂, m̂) when d̂' ≤ d̂, m̂' ≤ m̂,
        restricted to allowed pairs."""
        loose = make_algorithm("stopdown", SCHEMA, DiscoveryConfig())
        tight = make_algorithm(
            "stopdown", SCHEMA, DiscoveryConfig(max_bound_dims=1, max_measure_dims=1)
        )
        for row in rows:
            got_loose = loose.process(dict(row)).pairs
            got_tight = tight.process(dict(row)).pairs
            assert got_tight <= got_loose
            for c, m in got_tight:
                assert c.bound_count <= 1
                assert bin(m).count("1") <= 1
