"""Tests for prominence scoring, context counting, and fact ranking."""

import pytest

from repro import (
    Constraint,
    ContextCounter,
    DiscoveryConfig,
    Record,
    TableSchema,
)
from repro.core.facts import FactSet, SituationalFact
from repro.core.prominence import score_facts, select_reportable

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))


def rec(tid, dims=("a", "b"), values=(1.0, 1.0)):
    return Record(tid, tuple(dims), tuple(values), tuple(values))


class TestContextCounter:
    def test_register_counts_all_satisfied_constraints(self):
        counter = ContextCounter()
        counter.register(rec(0, ("a", "b")))
        assert counter.count(Constraint((None, None))) == 1
        assert counter.count(Constraint(("a", None))) == 1
        assert counter.count(Constraint(("a", "b"))) == 1
        assert counter.count(Constraint(("z", None))) == 0

    def test_counts_accumulate(self):
        counter = ContextCounter()
        counter.register(rec(0, ("a", "b")))
        counter.register(rec(1, ("a", "c")))
        assert counter.count(Constraint(("a", None))) == 2
        assert counter.count(Constraint(("a", "b"))) == 1

    def test_unregister_reverses(self):
        counter = ContextCounter()
        counter.register(rec(0, ("a", "b")))
        counter.register(rec(1, ("a", "b")))
        counter.unregister(rec(1, ("a", "b")))
        assert counter.count(Constraint(("a", "b"))) == 1
        counter.unregister(rec(0, ("a", "b")))
        assert counter.count(Constraint(("a", "b"))) == 0
        assert len(counter) == 0

    def test_max_bound_cap(self):
        counter = ContextCounter(max_bound_dims=1)
        counter.register(rec(0, ("a", "b")))
        assert counter.count(Constraint(("a", None))) == 1
        assert counter.count(Constraint(("a", "b"))) == 0  # beyond d̂


class TestSituationalFact:
    def test_prominence_ratio(self):
        f = SituationalFact(rec(0), Constraint(("a", None)), 0b1, 10, 2)
        assert f.prominence == 5.0

    def test_prominence_none_when_unscored(self):
        f = SituationalFact(rec(0), Constraint(("a", None)), 0b1)
        assert f.prominence is None

    def test_prominence_none_when_zero_skyline(self):
        f = SituationalFact(rec(0), Constraint(("a", None)), 0b1, 10, 0)
        assert f.prominence is None

    def test_describe(self):
        f = SituationalFact(rec(0), Constraint(("a", None)), 0b1, 10, 2)
        text = f.describe(SCHEMA)
        assert "d0=a" in text and "m0" in text and "prominence=5" in text


class TestFactSet:
    def _facts(self):
        fs = FactSet(rec(0))
        fs.add(SituationalFact(rec(0), Constraint(("a", None)), 0b01, 10, 1))
        fs.add(SituationalFact(rec(0), Constraint(("a", "b")), 0b01, 4, 2))
        fs.add(SituationalFact(rec(0), Constraint((None, None)), 0b11, 20, 4))
        return fs

    def test_ranked_descending_prominence(self):
        ranked = self._facts().ranked()
        proms = [f.prominence for f in ranked]
        assert proms == sorted(proms, reverse=True)
        assert proms[0] == 10.0

    def test_prominent_threshold_and_ties(self):
        fs = self._facts()
        assert [f.prominence for f in fs.prominent(tau=5)] == [10.0]
        assert fs.prominent(tau=50) == []

    def test_prominent_keeps_all_ties(self):
        fs = FactSet(rec(0))
        fs.add(SituationalFact(rec(0), Constraint(("a", None)), 0b01, 10, 1))
        fs.add(SituationalFact(rec(0), Constraint(("a", "b")), 0b10, 20, 2))
        winners = fs.prominent(tau=2)
        assert len(winners) == 2  # both at prominence 10

    def test_top_k_with_tie_at_cut(self):
        fs = FactSet(rec(0))
        fs.add(SituationalFact(rec(0), Constraint(("a", None)), 0b01, 9, 1))
        fs.add(SituationalFact(rec(0), Constraint(("a", "b")), 0b01, 6, 2))
        fs.add(SituationalFact(rec(0), Constraint((None, "b")), 0b10, 3, 1))
        top = fs.top_k(2)
        assert [f.prominence for f in top] == [9.0, 3.0, 3.0]

    def test_pairs_and_contains(self):
        fs = self._facts()
        assert (Constraint(("a", None)), 0b01) in fs
        assert (Constraint(("z", None)), 0b01) not in fs
        assert len(fs.pairs) == 3

    def test_len_and_iter(self):
        fs = self._facts()
        assert len(fs) == 3
        assert len(list(fs)) == 3


class TestScoreAndSelect:
    def test_score_facts_fills_sizes(self):
        counter = ContextCounter()
        r = rec(0, ("a", "b"))
        counter.register(r)
        fs = FactSet(r)
        fs.add_pair(Constraint(("a", None)), 0b1)
        sizes = {(Constraint(("a", None)), 0b1): 1}
        scored = score_facts(fs, counter, sizes)
        (fact,) = list(scored)
        assert fact.context_size == 1
        assert fact.skyline_size == 1
        assert fact.prominence == 1.0

    def test_select_reportable_tau(self):
        fs = FactSet(rec(0))
        fs.add(SituationalFact(rec(0), Constraint(("a", None)), 0b1, 10, 1))
        fs.add(SituationalFact(rec(0), Constraint(("a", "b")), 0b1, 2, 1))
        out = select_reportable(fs, DiscoveryConfig(tau=5))
        assert [f.prominence for f in out] == [10.0]

    def test_select_reportable_top_k(self):
        fs = FactSet(rec(0))
        fs.add(SituationalFact(rec(0), Constraint(("a", None)), 0b1, 10, 1))
        fs.add(SituationalFact(rec(0), Constraint(("a", "b")), 0b1, 2, 1))
        out = select_reportable(fs, DiscoveryConfig(top_k=1))
        assert len(out) == 1 and out[0].prominence == 10.0

    def test_select_reportable_default_ranks_all(self):
        fs = FactSet(rec(0))
        fs.add(SituationalFact(rec(0), Constraint(("a", None)), 0b1, 10, 1))
        fs.add(SituationalFact(rec(0), Constraint(("a", "b")), 0b1, 2, 1))
        out = select_reportable(fs, DiscoveryConfig())
        assert len(out) == 2


class TestFactSetColumns:
    """The columnar FactSet internals: bulk pair/score columns with
    lazy object materialisation."""

    def test_add_pairs_and_iter_pairs_stay_lazy(self):
        fs = FactSet(rec(0))
        pairs = [(Constraint(("a", None)), 0b01), (Constraint((None, "b")), 0b11)]
        fs.add_pairs([c for c, _ in pairs], [m for _, m in pairs])
        assert list(fs.iter_pairs()) == pairs
        assert len(fs) == 2
        assert fs.pairs == set(pairs)
        assert fs._facts is None  # nothing materialised yet

    def test_set_scores_before_materialisation(self):
        fs = FactSet(rec(0))
        fs.add_pair(Constraint(("a", None)), 0b01)
        fs.add_pair(Constraint((None, "b")), 0b11)
        fs.set_scores([10, 20], [2, 4])
        facts = list(fs)
        assert [f.context_size for f in facts] == [10, 20]
        assert [f.skyline_size for f in facts] == [2, 4]
        assert [f.prominence for f in facts] == [5.0, 5.0]

    def test_set_scores_after_materialisation_updates_objects(self):
        fs = FactSet(rec(0))
        fs.add_pair(Constraint(("a", None)), 0b01)
        first = list(fs)[0]
        fs.set_scores([7], [1])
        assert first.context_size == 7 and first.skyline_size == 1
        assert list(fs)[0] is first  # identity preserved

    def test_set_scores_rejects_short_columns(self):
        fs = FactSet(rec(0))
        fs.add_pair(Constraint(("a", None)), 0b01)
        fs.add_pair(Constraint((None, "b")), 0b10)
        with pytest.raises(ValueError):
            fs.set_scores([1], [1])

    def test_add_object_after_pairs_keeps_order_and_scores(self):
        fs = FactSet(rec(0))
        fs.add_pair(Constraint(("a", None)), 0b01)
        pre_scored = SituationalFact(rec(0), Constraint(("a", "b")), 0b01, 4, 2)
        fs.add(pre_scored)
        facts = list(fs)
        assert facts[1] is pre_scored
        assert facts[1].prominence == 2.0
        assert len(fs) == 2
