"""Engine-protocol conformance suite (`repro.api` facade).

Every engine composition built through ``open_engine`` must honour the
same :class:`repro.api.Engine` protocol and — where the composition is
semantics-preserving — produce property-identical output on a shared
stream: facts in emission order, scores, op-counter totals, deletions.
Windowed and aggregate compositions additionally prove equivalent to
hand-wired references of their semantics, and every composition
round-trips through a v3 snapshot (spec → snapshot → spec).
"""

import asyncio
import json
import random

import pytest

from repro import (
    Constraint,
    DiscoveryConfig,
    FactDiscoverer,
    TableSchema,
    open_engine,
    restore,
)
from repro.api import (
    CheckpointPolicy,
    Engine,
    EngineSpec,
    GroupSpec,
    ShardingSpec,
)
from repro.core.skyline import contextual_skyline

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))
CONFIG = DiscoveryConfig(max_bound_dims=2, max_measure_dims=2)


def make_rows(n, seed=7):
    rng = random.Random(seed)
    return [
        {
            "d0": f"a{rng.randint(0, 2)}",
            "d1": f"b{rng.randint(0, 2)}",
            # Anticorrelated-ish measures keep skylines busy.
            "m0": rng.randint(0, 9),
            "m1": 9 - rng.randint(0, 9) + rng.randint(0, 3),
        }
        for _ in range(n)
    ]


ROWS = make_rows(40)


def fact_key(fact):
    return (
        fact.constraint.values,
        fact.subspace,
        fact.context_size,
        fact.skyline_size,
    )


def counters_total(engine):
    snap = engine.counters.snapshot()
    return {
        k: snap[k]
        for k in ("comparisons", "traversed_constraints", "stored_tuples")
    }


#: Spec factory per engine kind.  The windowed kind uses a window larger
#: than the stream, so it participates in the identical-output matrix
#: (true eviction semantics are covered separately below).
ENGINE_SPECS = {
    "single-stopdown": lambda: EngineSpec(SCHEMA, "stopdown", CONFIG),
    "single-svec": lambda: EngineSpec(SCHEMA, "svec", CONFIG),
    "single-svec-dense": lambda: EngineSpec(
        SCHEMA, "svec", CONFIG, sweep_index="off"
    ),
    "single-svec-indexed": lambda: EngineSpec(
        SCHEMA, "svec", CONFIG, sweep_index="on"
    ),
    "sharded-serial": lambda: EngineSpec(
        SCHEMA, "svec", CONFIG, sharding=ShardingSpec(2, "serial")
    ),
    "sharded-serial-indexed": lambda: EngineSpec(
        SCHEMA, "svec", CONFIG, sharding=ShardingSpec(2, "serial"),
        sweep_index="on",
    ),
    "sharded-thread": lambda: EngineSpec(
        SCHEMA, "svec", CONFIG, sharding=ShardingSpec(3, "thread")
    ),
    "sharded-process": lambda: EngineSpec(
        SCHEMA, "svec", CONFIG, sharding=ShardingSpec(2, "process")
    ),
    "sharded-process-indexed": lambda: EngineSpec(
        SCHEMA, "svec", CONFIG, sharding=ShardingSpec(2, "process"),
        sweep_index="on",
    ),
    "windowed": lambda: EngineSpec(SCHEMA, "stopdown", CONFIG, window=4096),
    "windowed-svec-indexed": lambda: EngineSpec(
        SCHEMA, "svec", CONFIG, window=4096, sweep_index="on"
    ),
    "query-cached": lambda: EngineSpec(
        SCHEMA, "svec", CONFIG, query_cache=128
    ),
    "query-cached-sharded": lambda: EngineSpec(
        SCHEMA, "svec", CONFIG, sharding=ShardingSpec(2, "serial"),
        query_cache=128,
    ),
}

KINDS = sorted(ENGINE_SPECS)


@pytest.fixture(autouse=True)
def _small_fold_batch(monkeypatch):
    """Fold the sweep index every 8 arrivals so the 40-row shared stream
    actually exercises the indexed dominance-partition path (the default
    batch of 256 would leave every probe on the dense suffix).  Dense
    and indexed paths are required to be property-identical, so the
    non-indexed kinds are unaffected by construction — which is exactly
    what the equivalence matrix proves."""
    monkeypatch.setenv("REPRO_SWEEP_FOLD_BATCH", "8")


def run_stream(engine, rows, delete_every=0):
    """Observe ``rows`` (interleaving deletions when asked); returns the
    per-arrival fact keys."""
    out = []
    live = []
    for i, row in enumerate(rows):
        out.append([fact_key(f) for f in engine.observe(row)])
        live.append(engine.table[len(engine.table) - 1].tid)
        if delete_every and i % delete_every == delete_every - 1 and live:
            tid = live.pop(len(live) // 2)
            engine.delete(tid)
    return out


# ----------------------------------------------------------------------
# Protocol conformance
# ----------------------------------------------------------------------
class TestProtocolConformance:
    @pytest.mark.parametrize("kind", KINDS)
    def test_protocol_members(self, kind):
        with open_engine(ENGINE_SPECS[kind]()) as engine:
            assert isinstance(engine, Engine)
            for attr in ("schema", "discovery_schema", "config", "table",
                         "counters", "spec", "score", "kind"):
                assert hasattr(engine, attr), attr
            engine.observe_many(ROWS[:8])
            assert len(engine) == 8
            stats = engine.stats()
            assert stats["rows"] == 8
            assert {"kind", "score", "counters"} <= set(stats)
            json.dumps(stats)  # must be JSON-able
            # One uniform spec → dict → spec round trip.
            doc = engine.spec.to_dict()
            assert EngineSpec.from_dict(doc).to_dict() == doc
        # Context-manager exit closed it; close() stays idempotent.
        engine.close()

    @pytest.mark.parametrize("kind", KINDS)
    def test_update_matches_delete_then_observe(self, kind):
        with open_engine(ENGINE_SPECS[kind]()) as engine, open_engine(
            ENGINE_SPECS[kind]()
        ) as reference:
            engine.observe_many(ROWS[:10])
            reference.observe_many(ROWS[:10])
            replacement = {"d0": "a0", "d1": "b9", "m0": 9, "m1": 9}
            got = [fact_key(f) for f in engine.update(3, replacement)]
            reference.delete(3)
            want = [fact_key(f) for f in reference.observe(replacement)]
            assert got == want

    @pytest.mark.parametrize("kind", KINDS)
    def test_query_uniform(self, kind):
        """engine.query() answers forward skylines on every composition
        — including sharded engines, which historically could not."""
        with open_engine(ENGINE_SPECS[kind]()) as engine:
            engine.observe_many(ROWS)
            queries = engine.query()
            for mapping, measures in (
                ({}, ("m0",)),
                ({"d0": "a1"}, ("m0", "m1")),
                ({"d1": "b2"}, ("m1",)),
            ):
                constraint = Constraint.from_mapping(SCHEMA, mapping)
                subspace = SCHEMA.measure_mask(measures)
                got = sorted(r.tid for r in queries.skyline(constraint, subspace))
                want = sorted(
                    r.tid
                    for r in contextual_skyline(
                        engine.table, constraint, subspace
                    )
                )
                assert got == want, (kind, mapping, measures)
                prom = queries.prominence(constraint, subspace)
                assert prom is None or prom >= 1.0


# ----------------------------------------------------------------------
# Identical output across compositions
# ----------------------------------------------------------------------
class TestOutputEquivalence:
    @pytest.mark.parametrize("kind", KINDS)
    def test_shared_stream_property_identical(self, kind):
        reference = FactDiscoverer(SCHEMA, algorithm="stopdown", config=CONFIG)
        want = run_stream(reference, ROWS)
        with open_engine(ENGINE_SPECS[kind]()) as engine:
            got = run_stream(engine, ROWS)
            assert got == want
            assert counters_total(engine) == counters_total(reference)

    @pytest.mark.parametrize("kind", ["single-svec", "single-svec-indexed",
                                      "sharded-serial",
                                      "sharded-serial-indexed",
                                      "sharded-process", "windowed",
                                      "windowed-svec-indexed",
                                      "query-cached"])
    def test_deletion_interleaved_property_identical(self, kind):
        reference = FactDiscoverer(SCHEMA, algorithm="stopdown", config=CONFIG)
        want = run_stream(reference, ROWS, delete_every=5)
        with open_engine(ENGINE_SPECS[kind]()) as engine:
            got = run_stream(engine, ROWS, delete_every=5)
            assert got == want
            assert counters_total(engine) == counters_total(reference)

    @pytest.mark.parametrize(
        "kind", ["single-stopdown", "single-svec", "sharded-serial",
                 "windowed"]
    )
    def test_snapshot_restored_engine_is_identical(self, kind, tmp_path):
        """spec → snapshot → restore mid-stream equals the uninterrupted
        engine: same remaining-stream facts and same counter totals."""
        path = str(tmp_path / "mid.json")
        uninterrupted = open_engine(ENGINE_SPECS[kind]())
        want_head = run_stream(uninterrupted, ROWS[:20])
        with open_engine(ENGINE_SPECS[kind]()) as engine:
            assert run_stream(engine, ROWS[:20]) == want_head
            engine.snapshot(path)
        restored = restore(path)
        assert restored.spec.to_dict() == uninterrupted.spec.to_dict()
        assert run_stream(restored, ROWS[20:]) == run_stream(
            uninterrupted, ROWS[20:]
        )
        assert counters_total(restored) == counters_total(uninterrupted)
        restored.close()
        uninterrupted.close()


# ----------------------------------------------------------------------
# Batched queries: planner output identical on every composition
# ----------------------------------------------------------------------
class TestBatchQueryConformance:
    QUERIES = [
        "* | m0",
        "d0=a0 | m0, m1",
        "d0=a1 & d1=b1 | m1",
        "d1=b2 | m0",
        "d0=a2 | m0, m1",
        "d0=a0 & d1=b0 | m0",
        "d0=zz | m0",  # empty context — never reportable
    ]

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize(
        "bounds", [{}, {"top_k": 2}, {"tau": 2.0}, {"top_k": 2, "tau": 1.5}]
    )
    def test_batch_matches_naive_reference(self, kind, bounds):
        """``query().batch`` reports the same pairs, statistics and
        skylines as naive input-order evaluation on the reference
        engine, whatever the composition and bounds."""
        reference = FactDiscoverer(SCHEMA, algorithm="stopdown", config=CONFIG)
        reference.observe_many(ROWS)
        want = reference.query().batch(
            self.QUERIES, _fixed_order=True, **bounds
        )
        with open_engine(ENGINE_SPECS[kind]()) as engine:
            engine.observe_many(ROWS)
            got = engine.query().batch(self.QUERIES, **bounds)
            assert [(r.constraint, r.subspace) for r in got] == [
                (r.constraint, r.subspace) for r in want
            ], (kind, bounds)
            for g, w in zip(got, want):
                assert g.prominence == w.prominence
                assert g.context_size == w.context_size
                assert g.skyline_size == w.skyline_size
                assert sorted(r.tid for r in g.skyline) == sorted(
                    r.tid for r in w.skyline
                )


# ----------------------------------------------------------------------
# Middleware semantics (windowed / aggregate)
# ----------------------------------------------------------------------
class TestWindowedSemantics:
    def test_equivalent_to_manual_eviction(self):
        window = 6
        spec = EngineSpec(SCHEMA, "stopdown", CONFIG, window=window)
        reference = FactDiscoverer(SCHEMA, algorithm="stopdown", config=CONFIG)
        live = []
        with open_engine(spec) as engine:
            for row in ROWS:
                while len(live) >= window:
                    reference.delete(live.pop(0))
                want = [fact_key(f) for f in reference.observe(row)]
                table = reference.table
                live.append(table[len(table) - 1].tid)
                got = [fact_key(f) for f in engine.observe(row)]
                assert got == want
            assert len(engine) == window
            assert engine.live_tids == live
            assert counters_total(engine) == counters_total(reference)

    def test_windowed_sharded_composition(self):
        """A window layered over a *sharded* engine — composable for the
        first time through the facade."""
        spec = EngineSpec(
            SCHEMA, "svec", CONFIG, sharding=ShardingSpec(2, "serial"),
            window=5,
        )
        single = EngineSpec(SCHEMA, "stopdown", CONFIG, window=5)
        with open_engine(spec) as sharded, open_engine(single) as reference:
            for row in ROWS[:25]:
                got = [fact_key(f) for f in sharded.observe(row)]
                want = [fact_key(f) for f in reference.observe(row)]
                assert got == want
            assert len(sharded) == 5


AGG = GroupSpec(
    ("d0",), {"total": ("m0", "sum"), "games": ("m0", "count"),
              "best": ("m1", "max")}
)


class TestAggregateSemantics:
    def _reference(self):
        """Hand-wired aggregate reference: fold + retract + observe."""
        agg_schema = AGG.discovery_schema()
        ref = FactDiscoverer(agg_schema, algorithm="stopdown", config=CONFIG)
        sums, counts, best, live = {}, {}, {}, {}

        def push(row):
            key = row["d0"]
            sums[key] = sums.get(key, 0.0) + row["m0"]
            counts[key] = counts.get(key, 0) + 1
            best[key] = max(best.get(key, float("-inf")), row["m1"])
            if key in live:
                ref.delete(live[key])
            facts = ref.observe({
                "d0": key, "total": sums[key],
                "games": float(counts[key]), "best": float(best[key]),
            })
            live[key] = ref.table[len(ref.table) - 1].tid
            return facts

        return ref, push

    def test_equivalent_to_manual_fold(self):
        spec = EngineSpec(SCHEMA, "stopdown", CONFIG, aggregate=AGG)
        ref, push = self._reference()
        with open_engine(spec) as engine:
            for row in ROWS:
                got = [fact_key(f) for f in engine.observe(row)]
                want = [fact_key(f) for f in push(row)]
                assert got == want
            assert len(engine) == len(ref.table)
            assert counters_total(engine) == counters_total(ref)
            # Schemas split: validation on base rows, facts on aggregates.
            assert engine.schema.dimensions == SCHEMA.dimensions
            assert engine.discovery_schema.measures == ("total", "games", "best")

    def test_aggregate_journal_opt_out(self):
        """journal=False trades snapshot support for O(groups) memory."""
        from repro.api import AggregateMiddleware

        inner = FactDiscoverer(
            AGG.discovery_schema(), algorithm="stopdown", config=CONFIG
        )
        engine = AggregateMiddleware(inner, AGG, base_schema=SCHEMA,
                                     journal=False)
        for row in ROWS[:8]:
            engine.observe(row)
        assert "base_rows" not in engine.stats()
        with pytest.raises(RuntimeError, match="journal"):
            engine.snapshot_rows()

    def test_aggregate_delete_is_rejected(self):
        spec = EngineSpec(SCHEMA, "stopdown", CONFIG, aggregate=AGG)
        with open_engine(spec) as engine:
            engine.observe(ROWS[0])
            with pytest.raises(RuntimeError, match="group"):
                engine.delete(0)

    def test_aggregate_snapshot_replays_base_rows(self, tmp_path):
        """v3 persists the base-row journal, not the derived aggregates
        — restoring and continuing matches the uninterrupted fold."""
        spec = EngineSpec(SCHEMA, "stopdown", CONFIG, aggregate=AGG)
        path = str(tmp_path / "agg.json")
        uninterrupted = open_engine(spec)
        with open_engine(spec) as engine:
            for row in ROWS[:20]:
                engine.observe(row)
                uninterrupted.observe(row)
            engine.snapshot(path)
        doc = json.load(open(path))
        assert doc["format_version"] == 3
        assert len(doc["rows"]) == 20  # journal: every base row
        restored = restore(path)
        for row in ROWS[20:]:
            got = [fact_key(f) for f in restored.observe(row)]
            want = [fact_key(f) for f in uninterrupted.observe(row)]
            assert got == want
        assert restored.group_count() == uninterrupted.group_count()
        restored.close()
        uninterrupted.close()


# ----------------------------------------------------------------------
# Sharded query parity (the historical gap)
# ----------------------------------------------------------------------
class TestShardedQueryParity:
    def test_skyline_prominence_skyband_match_single(self):
        spec = EngineSpec(
            SCHEMA, "svec", CONFIG, sharding=ShardingSpec(3, "serial")
        )
        single = FactDiscoverer(SCHEMA, algorithm="stopdown", config=CONFIG)
        with open_engine(spec) as sharded:
            sharded.observe_many(ROWS)
            single.observe_many(ROWS)
            q_sharded, q_single = sharded.query(), single.query()
            cases = [
                (Constraint.from_mapping(SCHEMA, {}), ("m0", "m1")),
                (Constraint.from_mapping(SCHEMA, {"d0": "a0"}), ("m0",)),
                (Constraint.from_mapping(SCHEMA, {"d0": "a2", "d1": "b1"}),
                 ("m1",)),
            ]
            for constraint, measures in cases:
                subspace = SCHEMA.measure_mask(measures)
                assert sorted(
                    r.tid for r in q_sharded.skyline(constraint, subspace)
                ) == sorted(
                    r.tid for r in q_single.skyline(constraint, subspace)
                )
                assert q_sharded.prominence(
                    constraint, subspace
                ) == q_single.prominence(constraint, subspace)
                assert sorted(
                    r.tid for r in q_sharded.skyband(constraint, subspace, 2)
                ) == sorted(
                    r.tid for r in q_single.skyband(constraint, subspace, 2)
                )
                assert q_sharded.context_size(
                    constraint
                ) == q_single.context_size(constraint)

    def test_sharded_query_closed_engine_raises(self):
        spec = EngineSpec(
            SCHEMA, "svec", CONFIG, sharding=ShardingSpec(2, "serial")
        )
        engine = open_engine(spec)
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.query()


# ----------------------------------------------------------------------
# Spec validation and serialisation
# ----------------------------------------------------------------------
class TestEngineSpec:
    @pytest.mark.parametrize(
        "spec",
        [
            EngineSpec(SCHEMA),
            EngineSpec(SCHEMA, "svec", CONFIG, score=False),
            EngineSpec(SCHEMA, "svec", sharding=ShardingSpec(4, "process", 32)),
            EngineSpec(SCHEMA, window=7),
            EngineSpec(SCHEMA, aggregate=AGG),
            EngineSpec(SCHEMA, checkpoint=CheckpointPolicy("x.json", 1.5)),
        ],
    )
    def test_json_round_trip(self, spec):
        doc = json.loads(json.dumps(spec.to_dict()))
        assert EngineSpec.from_dict(doc).to_dict() == spec.to_dict()

    def test_window_and_aggregate_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not supported"):
            EngineSpec(SCHEMA, window=3, aggregate=AGG)

    def test_sharding_requires_svec(self):
        with pytest.raises(ValueError, match="svec"):
            EngineSpec(SCHEMA, "stopdown", sharding=ShardingSpec(2))

    def test_unscored_with_reporting_policy_rejected(self):
        with pytest.raises(ValueError, match="score=False"):
            EngineSpec(SCHEMA, config=DiscoveryConfig(tau=2.0), score=False)

    def test_aggregate_attrs_must_exist_in_base_schema(self):
        with pytest.raises(ValueError, match="missing"):
            EngineSpec(
                SCHEMA,
                aggregate=GroupSpec(("nope",), {"t": ("m0", "sum")}),
            )

    def test_bad_sharding_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ShardingSpec(2, "gpu")

    def test_checkpoint_policy_drives_default_snapshot(self, tmp_path):
        path = str(tmp_path / "auto.json")
        spec = EngineSpec(SCHEMA, checkpoint=CheckpointPolicy(path))
        with open_engine(spec) as engine:
            engine.observe_many(ROWS[:5])
            assert engine.snapshot() == path  # no explicit path needed
        restored = restore(path)
        assert len(restored) == 5
        restored.close()


# ----------------------------------------------------------------------
# Serving any composition
# ----------------------------------------------------------------------
class TestServerTakesAnyEngine:
    def _serve(self, spec, rows):
        from repro.service import StreamServer

        async def run():
            engine = open_engine(spec)
            server = StreamServer(engine, batch_max=8)
            await server.start()
            events = []
            for row in rows:
                events.append(await server.ingest_wait(row))
            await server.stop()
            engine.close()
            return engine, events

        return asyncio.run(run())

    def test_windowed_engine_is_servable(self):
        spec = EngineSpec(SCHEMA, "stopdown", CONFIG, window=5)
        engine, events = self._serve(spec, ROWS[:12])
        assert len(events) == 12
        assert len(engine) == 5  # eviction kept running under the server

    def test_aggregate_engine_is_servable(self):
        spec = EngineSpec(SCHEMA, "stopdown", CONFIG, aggregate=AGG)
        engine, events = self._serve(spec, ROWS[:12])
        assert len(events) == 12
        # Events carry aggregate-relation records (discovery schema).
        assert set(events[0].record.as_dict(engine.discovery_schema)) == {
            "d0", "total", "games", "best",
        }
        assert engine.group_count() == len({r["d0"] for r in ROWS[:12]})
