"""Tests for the experiment harness (timing, sweeps, tables)."""

import pytest

from repro import DiscoveryConfig, make_algorithm
from repro.datasets import synthetic_rows, synthetic_schema
from repro.experiments.harness import (
    FigureResult,
    Series,
    average_per_tuple_ms,
    counter_stream,
    sweep_vary_n,
    sweep_vary_param,
    timed_stream,
)

SCHEMA = synthetic_schema(2, 2)
ROWS = synthetic_rows(20, 2, 2, cardinalities=[3, 3], seed=4)


class TestSeries:
    def test_add(self):
        s = Series("x")
        s.add(1, 2.0)
        s.add(2, 3.0)
        assert s.xs == [1, 2] and s.ys == [2.0, 3.0]


class TestFigureResult:
    def _fig(self):
        a = Series("alpha", [1, 2], [0.5, 1.5])
        b = Series("beta", [1, 2], [2.0, 4.0])
        return FigureResult("T", "n", "ms", [a, b])

    def test_table_contains_everything(self):
        text = self._fig().table()
        assert "T" in text and "alpha" in text and "beta" in text
        assert "0.500" in text and "4" in text

    def test_final_values(self):
        assert self._fig().final_values() == {"alpha": 1.5, "beta": 4.0}

    def test_empty_series_tolerated(self):
        fig = FigureResult("T", "n", "ms", [Series("empty")])
        assert fig.final_values() == {}
        assert "T" in fig.table()


class TestTimedRuns:
    def test_timed_stream_checkpoints(self):
        algo = make_algorithm("bottomup", SCHEMA)
        out = timed_stream(algo, ROWS, [10, 20])
        assert [cp for cp, _ in out] == [10, 20]
        assert all(ms >= 0 for _, ms in out)
        assert len(algo.table) == 20

    def test_average_per_tuple(self):
        algo = make_algorithm("bottomup", SCHEMA)
        ms = average_per_tuple_ms(algo, ROWS)
        assert ms > 0

    def test_sweep_vary_n(self):
        series = sweep_vary_n(
            ["bottomup", "topdown"], SCHEMA, ROWS, [10, 20]
        )
        assert [s.label for s in series] == ["bottomup", "topdown"]
        assert all(len(s.ys) == 2 for s in series)

    def test_sweep_vary_param(self):
        def build(m):
            return synthetic_schema(2, m), synthetic_rows(8, 2, m, seed=m)

        series = sweep_vary_param(["bottomup"], [1, 2], build)
        (s,) = series
        assert s.xs == [1, 2]
        assert len(s.ys) == 2

    def test_counter_stream_is_cumulative(self):
        series = counter_stream(
            ["bottomup"],
            SCHEMA,
            ROWS,
            [10, 20],
            metric=lambda algo: algo.counters.traversed_constraints,
        )
        (s,) = series
        assert s.ys[1] >= s.ys[0] > 0


class TestFigureFunctionsSmoke:
    """Tiny-scale smoke of each figure callable (full runs live in
    benchmarks/)."""

    def test_fig14_smoke(self):
        from repro.experiments import figure14

        fig = figure14(scale=0.1, window=50)
        (s,) = fig.series
        assert len(s.ys) >= 1

    def test_fig15_smoke(self):
        from repro.experiments import figure15

        fig_a, fig_b = figure15(scale=0.05, taus=(2.0,))
        assert fig_a.series and fig_b.series

    def test_checkpoint_helper(self):
        from repro.experiments.figures import _checkpoints

        assert _checkpoints(100, windows=4) == [25, 50, 75, 100]
        assert _checkpoints(7, windows=4)[-1] == 7

    def test_registry_complete(self):
        from repro.experiments import ALL_FIGURES

        expected = {
            "fig7a", "fig7b", "fig7c", "fig8a", "fig8b", "fig8c", "fig9",
            "fig10a", "fig10b", "fig11a", "fig11b", "fig12a", "fig12b",
            "fig12c", "fig13", "fig14", "fig15",
        }
        assert set(ALL_FIGURES) == expected
