"""Tests for operation counters and memory accounting."""

from repro import OpCounters, TableSchema, make_algorithm
from repro.core.record import Record
from repro.metrics.memory import approximate_store_bytes, record_bytes


class TestOpCounters:
    def test_reset(self):
        c = OpCounters(comparisons=5, traversed_constraints=2)
        c.reset()
        assert c.comparisons == 0 and c.traversed_constraints == 0

    def test_snapshot(self):
        c = OpCounters(comparisons=3, file_reads=1)
        snap = c.snapshot()
        assert snap["comparisons"] == 3
        assert snap["file_reads"] == 1
        c.comparisons = 99
        assert snap["comparisons"] == 3  # snapshot is detached

    def test_addition(self):
        a = OpCounters(comparisons=1, stored_tuples=2)
        b = OpCounters(comparisons=3, file_writes=4)
        c = a + b
        assert c.comparisons == 4
        assert c.stored_tuples == 2
        assert c.file_writes == 4


class TestMemoryAccounting:
    def test_record_bytes_positive(self):
        r = Record(0, ("a", "b"), (1.0, 2.0), (1.0, 2.0))
        assert record_bytes(r) > 0

    def test_shared_records_counted_once(self):
        r = Record(0, ("a",), (1.0,), (1.0,))
        single = approximate_store_bytes([(("k1", 1), [r])])
        double = approximate_store_bytes([(("k1", 1), [r]), (("k2", 1), [r])])
        # The second reference costs a key + pointer, not a full record.
        assert double < 2 * single

    def test_empty(self):
        assert approximate_store_bytes([]) == 0


class TestCountersFlowThroughAlgorithms:
    def test_comparisons_counted(self, gamelog_schema, gamelog_rows):
        for name in ("bruteforce", "baselineseq", "bottomup", "topdown",
                     "sbottomup", "stopdown", "ccsc"):
            algo = make_algorithm(name, gamelog_schema)
            algo.process_stream(gamelog_rows)
            assert algo.counters.comparisons > 0, name
            assert algo.counters.traversed_constraints > 0, name

    def test_stored_tuples_gauge_tracks_store(self, gamelog_schema, gamelog_rows):
        algo = make_algorithm("bottomup", gamelog_schema)
        algo.process_stream(gamelog_rows)
        assert algo.counters.stored_tuples == algo.store.stored_tuple_count()

    def test_tuple_reduction_does_fewer_comparisons(
        self, gamelog_schema, gamelog_rows
    ):
        """BottomUp compares only against skyline tuples; BruteForce
        against everything (§IV idea 1)."""
        bf = make_algorithm("bruteforce", gamelog_schema)
        bu = make_algorithm("bottomup", gamelog_schema)
        bf.process_stream(gamelog_rows)
        bu.process_stream(gamelog_rows)
        assert bu.counters.comparisons < bf.counters.comparisons

    def test_sharing_traverses_fewer_constraints_than_topdown(self):
        """Fig. 11b: STopDown skips pruned non-skyline constraints."""
        from repro.datasets import synthetic_rows, synthetic_schema

        schema = synthetic_schema(3, 3)
        rows = synthetic_rows(80, 3, 3, "independent", cardinalities=[4, 4, 4], seed=1)
        td = make_algorithm("topdown", schema)
        std = make_algorithm("stopdown", schema)
        td.process_stream(rows)
        std.process_stream(rows)
        assert std.counters.comparisons < td.counters.comparisons
