"""Setuptools shim for environments without PEP-517 editable support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Incremental discovery of prominent situational facts "
        "(Sultana et al., ICDE 2014) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
